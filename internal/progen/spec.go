// Package progen is the property-based SPISA program generator: from a
// 64-bit seed and a Spec of character knobs it emits a random but
// well-formed assembly program that is guaranteed, by construction, to
// halt within a dynamic-instruction budget.
//
// Guarantees (relied on by the differential-fuzz harness and DESIGN.md §16):
//
//   - Determinism: the same (seed, spec, variant) produces byte-identical
//     source on every run and platform. The generator draws exclusively
//     from math/rand.NewSource, whose sequence is part of Go's
//     compatibility promise, and never iterates a map.
//   - Termination: every backward control edge is either a counted loop
//     over a dedicated count-down register that the body never touches, or
//     a data-fill loop over a monotonically increasing index. Data-dependent
//     branches only skip forward. Calls target leaf subroutines that return
//     through an untouched r31. The emitter tracks an exact upper bound on
//     dynamic instructions and clamps the iteration count so the bound
//     never exceeds Spec.Budget.
//   - Well-formedness: the emitted text assembles with internal/asm and
//     passes prog.Validate; loads and stores are masked into the program's
//     own data region, so the image the emulator hashes is fully determined
//     by the program itself.
//
// Programs have the same Train/Ref contract as the hand-written kernels:
// both variants share byte-identical text and differ only in two data
// cells (iteration count and data seed), so SPEAR annotations built on
// Train transfer to Ref.
package progen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Spec is the set of character knobs for one generated program. The
// zero value is invalid; start from DefaultSpec or RandomSpec.
type Spec struct {
	Blocks    int // b: basic blocks per innermost loop body
	BlockLen  int // k: max instruction slots per block
	Loops     int // l: loop nesting depth including the outer loop (1..3)
	InnerTrip int // t: trip count of each nested counted loop
	Iters     int // i: requested outer-loop trips, reference input
	TrainIter int // I: requested outer-loop trips, training input

	Mem          float64 // m: probability a body slot is a memory op
	PointerDepth int     // p: pointer-chase loads per outer iteration
	Cluster      int     // c: length of dependent (delinquent) load chains
	Branch       float64 // d: probability a block ends in a data-dependent branch
	Bias         float64 // B: taken probability of those branches
	FP           float64 // f: share of non-memory slots in the FP pipeline
	Calls        float64 // C: probability a block calls a leaf subroutine

	DataBytes int // D: data region size in bytes (power of two)
	Budget    int // G: hard cap on dynamic instructions, reference input
}

// DefaultSpec is a balanced mid-size program: ~50k instructions of data
// initialization plus a few hundred thousand instructions of mixed body.
func DefaultSpec() Spec {
	return Spec{
		Blocks: 6, BlockLen: 8, Loops: 2, InnerTrip: 6,
		Iters: 400, TrainIter: 150,
		Mem: 0.3, PointerDepth: 2, Cluster: 2,
		Branch: 0.4, Bias: 0.7, FP: 0.15, Calls: 0.1,
		DataBytes: 32768, Budget: 400_000,
	}
}

// Validate rejects knob values the emitter cannot honour.
func (s Spec) Validate() error {
	switch {
	case s.Blocks < 1 || s.Blocks > 64:
		return fmt.Errorf("progen: Blocks %d out of range [1,64]", s.Blocks)
	case s.BlockLen < 1 || s.BlockLen > 32:
		return fmt.Errorf("progen: BlockLen %d out of range [1,32]", s.BlockLen)
	case s.Loops < 1 || s.Loops > 3:
		return fmt.Errorf("progen: Loops %d out of range [1,3]", s.Loops)
	case s.InnerTrip < 1 || s.InnerTrip > 64:
		return fmt.Errorf("progen: InnerTrip %d out of range [1,64]", s.InnerTrip)
	case s.Iters < 1 || s.TrainIter < 1:
		return fmt.Errorf("progen: Iters/TrainIter must be positive")
	case s.PointerDepth < 0 || s.PointerDepth > 64:
		return fmt.Errorf("progen: PointerDepth %d out of range [0,64]", s.PointerDepth)
	case s.Cluster < 1 || s.Cluster > 8:
		return fmt.Errorf("progen: Cluster %d out of range [1,8]", s.Cluster)
	case bad01(s.Mem) || bad01(s.Branch) || bad01(s.Bias) || bad01(s.FP) || bad01(s.Calls):
		return fmt.Errorf("progen: probability knobs must be in [0,1]")
	case s.DataBytes < 4096 || s.DataBytes > 1<<20 || s.DataBytes&(s.DataBytes-1) != 0:
		return fmt.Errorf("progen: DataBytes %d must be a power of two in [4096,1<<20]", s.DataBytes)
	case s.Budget < 10_000 || s.Budget > 20_000_000:
		return fmt.Errorf("progen: Budget %d out of range [10000,20000000]", s.Budget)
	}
	return nil
}

func bad01(v float64) bool { return v < 0 || v > 1 }

// specFields maps the canonical single-letter keys to accessors, in
// canonical emission order.
var specFields = []struct {
	key string
	get func(*Spec) string
	set func(*Spec, string) error
}{
	{"b", func(s *Spec) string { return itoa(s.Blocks) }, func(s *Spec, v string) error { return atoi(&s.Blocks, v) }},
	{"k", func(s *Spec) string { return itoa(s.BlockLen) }, func(s *Spec, v string) error { return atoi(&s.BlockLen, v) }},
	{"l", func(s *Spec) string { return itoa(s.Loops) }, func(s *Spec, v string) error { return atoi(&s.Loops, v) }},
	{"t", func(s *Spec) string { return itoa(s.InnerTrip) }, func(s *Spec, v string) error { return atoi(&s.InnerTrip, v) }},
	{"i", func(s *Spec) string { return itoa(s.Iters) }, func(s *Spec, v string) error { return atoi(&s.Iters, v) }},
	{"I", func(s *Spec) string { return itoa(s.TrainIter) }, func(s *Spec, v string) error { return atoi(&s.TrainIter, v) }},
	{"m", func(s *Spec) string { return ftoa(s.Mem) }, func(s *Spec, v string) error { return atof(&s.Mem, v) }},
	{"p", func(s *Spec) string { return itoa(s.PointerDepth) }, func(s *Spec, v string) error { return atoi(&s.PointerDepth, v) }},
	{"c", func(s *Spec) string { return itoa(s.Cluster) }, func(s *Spec, v string) error { return atoi(&s.Cluster, v) }},
	{"d", func(s *Spec) string { return ftoa(s.Branch) }, func(s *Spec, v string) error { return atof(&s.Branch, v) }},
	{"B", func(s *Spec) string { return ftoa(s.Bias) }, func(s *Spec, v string) error { return atof(&s.Bias, v) }},
	{"f", func(s *Spec) string { return ftoa(s.FP) }, func(s *Spec, v string) error { return atof(&s.FP, v) }},
	{"C", func(s *Spec) string { return ftoa(s.Calls) }, func(s *Spec, v string) error { return atof(&s.Calls, v) }},
	{"D", func(s *Spec) string { return itoa(s.DataBytes) }, func(s *Spec, v string) error { return atoi(&s.DataBytes, v) }},
	{"G", func(s *Spec) string { return itoa(s.Budget) }, func(s *Spec, v string) error { return atoi(&s.Budget, v) }},
}

func itoa(v int) string             { return strconv.Itoa(v) }
func atoi(dst *int, v string) error { n, err := strconv.Atoi(v); *dst = n; return err }
func ftoa(v float64) string         { return strconv.FormatFloat(v, 'g', -1, 64) }
func atof(dst *float64, v string) error {
	f, err := strconv.ParseFloat(v, 64)
	*dst = f
	return err
}

// String renders the canonical underscore-separated encoding, e.g.
// "b6_k8_l2_t6_i400_I150_m0.3_p2_c2_d0.4_B0.7_f0.15_C0.1_D32768_G400000".
// The encoding contains no commas or spaces so it survives -kernels flag
// splitting and journal keys, and ParseSpec round-trips it exactly.
func (s Spec) String() string {
	parts := make([]string, len(specFields))
	for i, f := range specFields {
		parts[i] = f.key + f.get(&s)
	}
	return strings.Join(parts, "_")
}

// ParseSpec parses the canonical encoding produced by String. Every field
// must appear exactly once; order is free on input, canonical on output.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	seen := make([]bool, len(specFields))
	for _, tok := range strings.Split(text, "_") {
		if tok == "" {
			return Spec{}, fmt.Errorf("progen: empty field in spec %q", text)
		}
		matched := false
		for i, f := range specFields {
			if strings.HasPrefix(tok, f.key) {
				if seen[i] {
					return Spec{}, fmt.Errorf("progen: duplicate field %q in spec %q", f.key, text)
				}
				if err := f.set(&s, tok[len(f.key):]); err != nil {
					return Spec{}, fmt.Errorf("progen: bad value %q in spec %q", tok, text)
				}
				seen[i] = true
				matched = true
				break
			}
		}
		if !matched {
			return Spec{}, fmt.Errorf("progen: unknown field %q in spec %q", tok, text)
		}
	}
	for i, f := range specFields {
		if !seen[i] {
			return Spec{}, fmt.Errorf("progen: missing field %q in spec %q", f.key, text)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Character summarizes the behavioural regime the knobs select, in the
// style of the hand-written kernels' Character strings.
func (s Spec) Character() string {
	return fmt.Sprintf("generated: mem %.2f, chase depth %d, load clusters %d, branches %.2f@%.2f, loops %d×%d, fp %.2f, %d KiB data",
		s.Mem, s.PointerDepth, s.Cluster, s.Branch, s.Bias, s.Loops, s.InnerTrip, s.FP, s.DataBytes/1024)
}

// hash folds the canonical encoding into 64 bits; mixed into the seed so
// two specs at the same seed draw different instruction streams.
func (s Spec) hash() int64 {
	h := fnv.New64a()
	h.Write([]byte(s.String()))
	return int64(h.Sum64())
}

// RandomSpec draws a feasible random spec. Knob combinations whose
// worst-case per-iteration cost could not fit at least one outer
// iteration in the budget are clamped down deterministically, so
// Source/Build never fail on a RandomSpec output (property-tested).
func RandomSpec(seed int64) Spec {
	r := rand.New(rand.NewSource(seed*0x9E3779B9 + 0x7F4A7C15))
	s := Spec{
		Blocks:       2 + r.Intn(8),
		BlockLen:     3 + r.Intn(10),
		Loops:        1 + r.Intn(3),
		InnerTrip:    2 + r.Intn(10),
		Iters:        100 + r.Intn(2900),
		TrainIter:    50 + r.Intn(500),
		Mem:          pct(r, 5, 60),
		PointerDepth: r.Intn(5),
		Cluster:      1 + r.Intn(4),
		Branch:       pct(r, 0, 70),
		Bias:         pct(r, 5, 95),
		FP:           pct(r, 0, 50),
		Calls:        pct(r, 0, 30),
		DataBytes:    8192 << r.Intn(3),
	}
	// Clamp the loop nest until one outer iteration surely fits: the body
	// worst case (every slot a max-length load chain, every block ending
	// in call+branch) must stay under ~3k instructions per outer trip.
	for s.perWorst() > 3000 {
		switch {
		case s.InnerTrip > 2:
			s.InnerTrip--
		case s.Blocks > 2:
			s.Blocks--
		case s.BlockLen > 3:
			s.BlockLen--
		default:
			s.Loops--
		}
	}
	s.Budget = s.fixedWorst() + s.perWorst()*(20+r.Intn(120))
	return s
}

func pct(r *rand.Rand, lo, hi int) float64 { return float64(lo+r.Intn(hi-lo+1)) / 100 }

// perWorst bounds the cost of one outer iteration from above, assuming
// every slot takes its most expensive shape.
func (s Spec) perWorst() int {
	slot := 3*s.Cluster + 2               // max-length load chain
	block := s.BlockLen*slot + 9 + 9 + 10 // slots + branch + call(+leaf)
	mult := 1
	for d := 1; d < s.Loops; d++ {
		mult *= s.InnerTrip
	}
	// Counted-loop overhead: guard+decrement+jump per trip plus setup.
	overhead := s.Loops * (s.InnerTrip + 4) * mult
	return mult*s.Blocks*block + overhead + s.PointerDepth + 8
}

// fixedWorst bounds the one-time cost (prologue, data fill, ring build).
func (s Spec) fixedWorst() int {
	return 6*(s.DataBytes/8) + 9*(s.DataBytes/16) + 64
}

// Presets names a few hand-picked character mixes used by cmd/spearfuzz
// -spec and the committed corpus.
func Presets() map[string]Spec {
	d := DefaultSpec()

	chase := d
	chase.Mem, chase.PointerDepth, chase.Cluster = 0.5, 6, 3
	chase.Branch, chase.FP = 0.2, 0.05
	chase.DataBytes, chase.Budget = 65536, 600_000
	chase.Iters = 800

	branchy := d
	branchy.Branch, branchy.Bias, branchy.Mem = 0.9, 0.55, 0.15
	branchy.Blocks, branchy.BlockLen = 10, 4

	membound := d
	membound.Mem, membound.Cluster, membound.PointerDepth = 0.65, 4, 1
	membound.DataBytes, membound.Budget = 65536, 600_000

	fp := d
	fp.FP, fp.Mem, fp.Branch = 0.75, 0.15, 0.25

	deep := d
	deep.Loops, deep.InnerTrip, deep.Calls = 3, 5, 0.35
	deep.Blocks, deep.BlockLen, deep.Iters = 3, 5, 300

	tiny := d
	tiny.Blocks, tiny.BlockLen, tiny.Loops, tiny.InnerTrip = 2, 3, 1, 1
	tiny.Iters, tiny.TrainIter = 60, 30
	tiny.DataBytes, tiny.Budget, tiny.PointerDepth = 4096, 30_000, 1

	return map[string]Spec{
		"default": d, "chase": chase, "branchy": branchy,
		"membound": membound, "fp": fp, "deep": deep, "tiny": tiny,
	}
}

// PresetNames returns the preset names, sorted.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
