module spear

go 1.22
