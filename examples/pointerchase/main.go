// Pointerchase contrasts the two irregular-access regimes from the paper's
// analysis: a *gather* (the next address is computable from a stream, so
// the p-thread can run arbitrarily far ahead) and a *serial pointer chase*
// (each address depends on the previous load's value, so pre-execution
// cannot outrun the chain — tr's behaviour in the paper).
//
// Run with: go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"spear/internal/cpu"
	"spear/internal/harness"
	"spear/internal/workloads"
)

func main() {
	for _, name := range []string{"pointer", "tr"} {
		k, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("workload %s missing", name)
		}
		prep, err := harness.Prepare(*k, harness.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %s ===\n", k.Name, k.Description)
		for _, pt := range prep.Ref.PThreads {
			fmt.Printf("p-thread @ d-load %d: %d instructions, live-ins %v\n", pt.DLoad, pt.Size(), pt.LiveIns)
			for _, m := range pt.Members {
				fmt.Printf("    %3d: %v\n", m, prep.Ref.Text[m])
			}
		}
		base, err := cpu.Run(prep.Ref, cpu.BaselineConfig())
		if err != nil {
			log.Fatal(err)
		}
		spear, err := cpu.Run(prep.Ref, cpu.SPEARConfig(128, false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline IPC %.3f -> SPEAR-128 IPC %.3f (%+.1f%%), misses %d -> %d\n\n",
			base.IPC, spear.IPC, 100*(spear.IPC/base.IPC-1), base.MainL1Misses(), spear.MainL1Misses())
	}
	fmt.Println("The gather speeds up: its slice recomputes future addresses from the")
	fmt.Println("index stream. The chase does not: every p-thread load waits for the")
	fmt.Println("previous one, so the helper can never get ahead of the main thread.")
}
