// Quickstart: assemble a small irregular-access loop, compile it with the
// SPEAR compiler, and compare the baseline superscalar against SPEAR-128 on
// the cycle simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"spear/internal/asm"
	"spear/internal/cpu"
	"spear/internal/spearcc"
)

// The kernel walks a sequential index stream and gathers from a table much
// larger than the L2 cache — the access pattern that defeats stride
// prefetchers and motivates speculative pre-execution.
const source = `
        .data
nIter:  .quad 0
idx:    .space 262144        # 32K stream entries
tbl:    .space 4194304       # 512K-entry table (4 MiB)
        .text
main:   ld   r4, nIter(r0)
        la   r1, idx
        la   r2, tbl
        li   r3, 0
loop:   slli r5, r3, 3
        andi r5, r5, 0x3FFF8
        add  r6, r1, r5
        ld   r7, 0(r6)          # stream load (mostly hits)
        slli r8, r7, 3
        add  r9, r2, r8
        ld   r10, 0(r9)         # the delinquent load
        add  r11, r11, r10
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
`

func main() {
	p, err := asm.Assemble("quickstart.s", source)
	if err != nil {
		log.Fatal(err)
	}
	// Fill the inputs: a training set for the compiler and the loop bound.
	r := rand.New(rand.NewSource(42))
	fill := func(iters int) {
		binary.LittleEndian.PutUint64(p.Data[0].Bytes[0:], uint64(iters))
		idxOff := p.Symbols["idx"] - p.Data[0].Addr
		for i := 0; i < 32768; i++ {
			binary.LittleEndian.PutUint64(p.Data[0].Bytes[idxOff+uint32(8*i):], uint64(r.Intn(512*1024)))
		}
	}
	fill(12000)

	// Compile: CFG -> profile -> slice -> attach (Figure 4 of the paper).
	opts := spearcc.DefaultOptions()
	opts.Profile.MaxInstr = 1_000_000
	compiled, report, err := spearcc.Compile(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== SPEAR compiler report ===")
	fmt.Print(report.Describe(compiled))

	// Simulate on a fresh (reference) input: same text, new data.
	fill(30000)
	compiled.Data = p.Data

	base, err := cpu.Run(compiled, cpu.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	spear, err := cpu.Run(compiled, cpu.SPEARConfig(128, false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== results ===")
	fmt.Printf("baseline:  %8d cycles, IPC %.3f, %6d L1D misses\n", base.Cycles, base.IPC, base.MainL1Misses())
	fmt.Printf("SPEAR-128: %8d cycles, IPC %.3f, %6d L1D misses (%d prefetch loads)\n",
		spear.Cycles, spear.IPC, spear.MainL1Misses(), spear.PrefetchLoads)
	fmt.Printf("speedup:   %.1f%%\n", 100*(spear.IPC/base.IPC-1))
}
