// Latencysweep reproduces the Figure 9 methodology on one kernel as a
// library-usage example: sweep the memory latency from 40 to 200 cycles
// (L2 from 4 to 20) and watch the baseline collapse while SPEAR degrades
// gracefully — the latency-tolerance claim of the paper.
//
// Run with: go run ./examples/latencysweep [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"spear/internal/cpu"
	"spear/internal/harness"
	"spear/internal/workloads"
)

func main() {
	name := "pointer"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	k, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (known: %v)", name, workloads.Names())
	}
	prep, err := harness.Prepare(*k, harness.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("latency tolerance of %s (IPC)\n\n", k.Name)
	fmt.Printf("%-22s", "memory/L2 latency")
	for _, lat := range harness.Fig9Latencies {
		fmt.Printf("  %3d/%-2d", lat[1], lat[0])
	}
	fmt.Println()

	machines := []cpu.Config{cpu.BaselineConfig(), cpu.SPEARConfig(128, false), cpu.SPEARConfig(256, false)}
	for _, m := range machines {
		fmt.Printf("%-22s", m.Name)
		var first, last float64
		for i, lat := range harness.Fig9Latencies {
			cfg := m
			cfg.Hierarchy = cfg.Hierarchy.WithLatencies(lat[0], lat[1])
			res, err := cpu.Run(prep.Ref, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				first = res.IPC
			}
			last = res.IPC
			fmt.Printf("  %6.3f", res.IPC)
		}
		fmt.Printf("   (loses %.1f%% at the longest latency)\n", 100*(1-last/first))
	}
}
