// Compiler_pipeline runs the SPEAR compiler's four modules one at a time on
// a workload and prints what each produces: the control-flow graph and loop
// nest (module ①), the profiling results (module ②), the hybrid slices
// (module ③), and the attached binary (module ④).
//
// Run with: go run ./examples/compiler_pipeline [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"spear/internal/cfg"
	"spear/internal/profile"
	"spear/internal/slicer"
	"spear/internal/spearcc"
	"spear/internal/workloads"
)

func main() {
	name := "mcf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	k, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (known: %v)", name, workloads.Names())
	}
	train, err := k.Build(workloads.Train)
	if err != nil {
		log.Fatal(err)
	}

	// Module ①: control-flow graph and loop nest.
	g, err := cfg.Build(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== module ①: CFG for %s ===\n", train.Name)
	fmt.Printf("%d basic blocks, %d loops, %d functions\n", len(g.Blocks), len(g.Loops), len(g.Funcs))
	for _, l := range g.Loops {
		lo, hi := g.LoopInstrRange(l.ID)
		fmt.Printf("  loop %d: header block %d, depth %d, instructions [%d,%d]\n", l.ID, l.Header, l.Depth, lo, hi)
	}

	// Module ②: profiling (on the training input).
	pcfg := profile.DefaultConfig()
	pcfg.MaxInstr = 2_000_000
	pcfg.MissThreshold = 2048
	res, err := profile.Run(train, g, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== module ②: profile (%d instructions) ===\n", res.InstrCount)
	pcs := make([]int, 0, len(res.LoadStats))
	for pc := range res.LoadStats {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		ls := res.LoadStats[pc]
		fmt.Printf("  load %3d (%v): %7d execs, %7d misses (%.1f%%)\n",
			pc, train.Text[pc], ls.Execs, ls.Misses, 100*float64(ls.Misses)/float64(ls.Execs))
	}
	fmt.Printf("selected d-loads: %v\n", res.DLoads)
	for l, dc := range res.LoopDCycles {
		fmt.Printf("  loop %d: %.1f d-cycles per iteration over %d iterations\n", l, dc, res.LoopIters[l])
	}

	// Module ③: hybrid slicing with the region-based prefetching range.
	pthreads, reports := slicer.Build(train, g, res, slicer.DefaultConfig())
	fmt.Printf("\n=== module ③: slices ===\n")
	for _, rep := range reports {
		if rep.Skipped {
			fmt.Printf("  d-load %d skipped: %s\n", rep.DLoad, rep.Reason)
			continue
		}
		pt := rep.PThread
		fmt.Printf("  d-load %d: region [%d,%d] (d-cycle %.0f), %d members, live-ins %v\n",
			pt.DLoad, pt.RegionStart, pt.RegionEnd, pt.DCycle, pt.Size(), pt.LiveIns)
	}

	// Module ④: attach.
	out := spearcc.Attach(train, pthreads)
	fmt.Printf("\n=== module ④: attach ===\n")
	fmt.Printf("SPEAR binary: %d instructions, %d p-thread annotations\n", len(out.Text), len(out.PThreads))
	if err := out.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("binary validates: p-threads are strict subsets of the main program text")
}
