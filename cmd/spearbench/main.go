// Command spearbench regenerates the paper's evaluation: Table 1, Figure 6,
// Table 3, Figure 7, Figure 8, and Figure 9.
//
// Usage:
//
//	spearbench [-experiment all|table1|fig6|table3|fig7|fig8|fig9|faults]
//	           [-kernels mcf,art,...] [-parallel N] [-seed N] [-v]
//	spearbench -json [-kernels mcf,art] > report.json
//	spearbench -csv  [-kernels mcf,art] > report.csv
//	spearbench -json -journal sweep.journal > report.json
//	spearbench -json -journal sweep.journal -resume > report.json
//	spearbench -fsck -journal sweep.journal
//	spearbench -compact -journal sweep.journal
//	spearbench -json -perf-out BENCH_dev.json > report.json
//	spearbench -json -autoprofile profiles/ > report.json
//	spearbench -json -debug-addr localhost:6060 -journal sweep.journal > report.json
//
// With -json or -csv the bench instead sweeps every kernel across the five
// machine models and emits one machine-readable report on stdout (schema
// spear-report/1, or /2 when reliability fields are present); render it
// with spearstat. -cpuprofile and -memprofile write pprof profiles of the
// sweep itself.
//
// Performance observability (sweep mode): -perf-out captures the sweep
// as a spear-bench/1 baseline document (per-stage simulator host time,
// journal I/O, allocs, committed-instrs/sec; diff two with spearstat
// -bench); -autoprofile re-runs the sweep's slowest pair under the CPU
// profiler into a directory; -debug-addr serves /debug/pprof/ and
// /metrics live. Any of these attaches the perf registry, which also
// stamps Result.Timing onto every row — perf-enabled reports carry host
// timing and so are not byte-reproducible across runs.
//
// Sweeps execute their (kernel, machine) pairs on a bounded worker pool
// of -parallel goroutines (default GOMAXPROCS). The report's rows keep
// the exact serial order regardless of completion order, and every
// simulation is deterministic, so a parallel sweep's JSON/CSV output is
// byte-identical to a serial (-parallel 1) sweep's — only wall clock
// changes. Journal records interleave in completion order; resume keys
// them by content hash, so -journal/-resume compose with -parallel.
//
// Crash safety: -journal <dir> write-ahead-journals every run (fsync'd,
// checksummed records), and -resume replays a previous journal —
// completed runs are served from it, in-flight ones re-execute, corrupt
// records are quarantined to a sidecar and their runs re-execute — so a
// sweep killed at any point, even on degraded storage, converges to the
// exact report an uninterrupted sweep produces.
// SIGINT/SIGTERM cancel gracefully: in-flight simulations are preempted
// within a bounded cycle count, the journal is flushed, and a partial
// report marked "interrupted" is still written; a second signal forces an
// immediate exit.
//
// Journal maintenance: -fsck walks the journal and reports per-record
// integrity without modifying anything; -compact folds the journal down
// to each run's latest record (rewriting atomically, quarantining any
// damage along the way), the upgrade path from v1 to checksummed v2
// records.
//
// Exit codes:
//
//	0  complete — every requested run finished (errors included as rows)
//	3  partial  — the sweep was interrupted; resume it with -journal/-resume
//	5  damaged  — -fsck found torn or corrupt journal records
//	1  hard failure — bad flags, unknown kernel, I/O errors, ...
//
// Running everything takes a few minutes; use -kernels to restrict the set.
// Sweeps run in partial-results mode: a failing (kernel, machine) pair
// renders as a per-row error instead of aborting the experiment, kernels
// that fail to prepare are reported on stderr and skipped, transiently
// failing runs are retried with exponential backoff, and a run that fails
// repeatedly trips a circuit breaker into a typed skip row.
//
// The faults experiment injects every fault class (corrupt slice masks,
// bogus trigger PCs, truncated live-in sets, flipped opcode bits in the
// P-thread Table image) into every kernel and verifies the containment
// invariant: the main thread's final state must match the functional
// emulator's under any p-thread fault.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"spear/internal/cpu"
	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/journal"
	"spear/internal/perf"
	"spear/internal/sched"
	"spear/internal/workloads"
)

// Exit codes (documented in the package comment and -h output; the
// numbers live in the shared internal/exitcode table).
const (
	exitOK      = exitcode.OK
	exitErr     = exitcode.Err
	exitPartial = exitcode.Partial
	exitDamaged = exitcode.FsckDamaged
)

// errPartial marks a gracefully interrupted sweep: the partial report was
// written and the process exits with code 3.
var errPartial = errors.New("sweep interrupted; resume with -journal/-resume")

// errDamaged marks an -fsck walk that found torn or corrupt records: the
// report was printed and the process exits with code 5.
var errDamaged = errors.New("journal damaged; resume quarantines and re-executes the damaged runs")

func main() {
	experiment := flag.String("experiment", "all", "table1, fig6, table3, fig7, fig8, fig9, faults, motivation, hybrid, ablate, or all")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all fifteen)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (worker-pool width for sweeps)")
	seed := flag.Int64("seed", 1, "fault-injection seed (faults experiment); also folded into journal run keys")
	verbose := flag.Bool("v", false, "log progress to stderr")
	asJSON := flag.Bool("json", false, "sweep all machines and write a spear-report JSON report to stdout")
	asCSV := flag.Bool("csv", false, "sweep all machines and write a flat CSV report to stdout")
	journalDir := flag.String("journal", "", "write-ahead journal directory for crash-safe sweeps (with -json/-csv)")
	resume := flag.Bool("resume", false, "resume from the journal in -journal: replay completed runs, re-execute in-flight ones")
	fsck := flag.Bool("fsck", false, "verify per-record integrity of the journal in -journal and exit (5 on damage)")
	compact := flag.Bool("compact", false, "fold the journal in -journal down to each run's latest record and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	perfOut := flag.String("perf-out", "", "with -json/-csv: write a spear-bench/1 perf-baseline document to this file (diff with spearstat -bench)")
	autoProf := flag.String("autoprofile", "", "with -json/-csv: after the sweep, re-run its slowest pair under the CPU profiler and write cpu.pprof/heap.pprof into this directory")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof/ and /metrics (JSON registry snapshot) on this address for live inspection")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: spearbench [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
Exit codes:
  0  complete — every requested run finished (per-run errors included as rows)
  3  partial  — interrupted by SIGINT/SIGTERM; resume with -journal <dir> -resume
  5  damaged  — -fsck found torn or corrupt journal records
  1  hard failure

A first SIGINT/SIGTERM cancels gracefully (journal flushed, partial report
written); a second forces an immediate exit.
`)
	}
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "spearbench: interrupt — cancelling in-flight runs and flushing the journal (signal again to force exit)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "spearbench: forced exit")
		os.Exit(exitErr)
	}()

	if *fsck || *compact {
		if err := maintain(*journalDir, *fsck, *compact); err != nil {
			fmt.Fprintln(os.Stderr, "spearbench:", err)
			if errors.Is(err, errDamaged) {
				os.Exit(exitDamaged)
			}
			os.Exit(exitErr)
		}
		os.Exit(exitOK)
	}

	err := profiled(*cpuProfile, *memProfile, func() error {
		return run(ctx, runOptions{
			experiment: *experiment, kernels: *kernels, parallel: *parallel, seed: *seed,
			verbose: *verbose, asJSON: *asJSON, asCSV: *asCSV,
			journalDir: *journalDir, resume: *resume,
			perfOut: *perfOut, autoProfile: *autoProf, debugAddr: *debugAddr,
		})
	})
	switch {
	case err == nil:
		os.Exit(exitOK)
	case errors.Is(err, errPartial), errors.Is(err, cpu.ErrInterrupted), errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "spearbench:", err)
		os.Exit(exitPartial)
	default:
		fmt.Fprintln(os.Stderr, "spearbench:", err)
		os.Exit(exitErr)
	}
}

// maintain handles the journal maintenance modes (-fsck, -compact),
// which run without building a kernel suite.
func maintain(dir string, fsck, compact bool) error {
	if dir == "" {
		return fmt.Errorf("-fsck/-compact require -journal <dir>")
	}
	if fsck && compact {
		return fmt.Errorf("-fsck and -compact are mutually exclusive")
	}
	if fsck {
		rep, err := journal.Fsck(nil, dir)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if !rep.Clean() {
			return errDamaged
		}
		return nil
	}
	events := func(e journal.Event) { fmt.Fprintln(os.Stderr, "spearbench:", e) }
	stats, err := journal.Compact(nil, dir, events)
	if err != nil {
		return err
	}
	fmt.Printf("journal %s: compacted %d records (%d bytes) to %d records (%d bytes)\n",
		dir, stats.RecordsBefore, stats.BytesBefore, stats.RecordsAfter, stats.BytesAfter)
	if stats.Quarantined > 0 {
		fmt.Printf("  %d corrupt records quarantined to %s\n", stats.Quarantined, journal.QuarantineName)
	}
	if stats.TornTrimmed {
		fmt.Println("  torn final record dropped")
	}
	return nil
}

// profiled runs f under the optional pprof CPU and heap profiles.
func profiled(cpuProfile, memProfile string, f func() error) error {
	if cpuProfile != "" {
		pf, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			pf, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spearbench:", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintln(os.Stderr, "spearbench:", err)
			}
		}()
	}
	return f()
}

// runOptions bundles the flag values run needs.
type runOptions struct {
	experiment  string
	kernels     string
	parallel    int
	seed        int64
	verbose     bool
	asJSON      bool
	asCSV       bool
	journalDir  string
	resume      bool
	perfOut     string
	autoProfile string
	debugAddr   string
}

func run(ctx context.Context, ro runOptions) error {
	experiment, seed := ro.experiment, ro.seed
	opts := harness.DefaultOptions()
	opts.Parallel = ro.parallel
	opts.Seed = ro.seed
	if ro.verbose {
		opts.Log = os.Stderr
	}
	if ro.kernels != "" {
		for _, name := range strings.Split(ro.kernels, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workloads.ByName(name); !ok {
				return fmt.Errorf("unknown kernel %q (known: %s)", name, strings.Join(workloads.Names(), ", "))
			}
			opts.Kernels = append(opts.Kernels, name)
		}
	}
	if ro.resume && ro.journalDir == "" {
		return fmt.Errorf("-resume requires -journal <dir>")
	}
	if ro.journalDir != "" && !ro.asJSON && !ro.asCSV {
		return fmt.Errorf("-journal applies to sweep mode; add -json or -csv")
	}
	if (ro.perfOut != "" || ro.autoProfile != "") && !ro.asJSON && !ro.asCSV {
		return fmt.Errorf("-perf-out/-autoprofile apply to sweep mode; add -json or -csv")
	}

	// Any perf surface turns the registry on; it is shared by the
	// simulator, the harness spans, the journal, and /metrics.
	var reg *perf.Registry
	if ro.perfOut != "" || ro.autoProfile != "" || ro.debugAddr != "" {
		reg = perf.NewRegistry()
		opts.Perf = reg
	}
	if ro.debugAddr != "" {
		addr, err := startDebugServer(ro.debugAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spearbench: debug server on http://%s (/debug/pprof/, /metrics)\n", addr)
	}

	suite, err := harness.NewSuiteContext(ctx, opts)
	if err != nil {
		return err
	}
	for name, perr := range suite.Failed {
		fmt.Fprintf(os.Stderr, "spearbench: warning: kernel %s failed to prepare and is skipped: %v\n", name, perr)
	}
	out := io.Writer(os.Stdout)

	if ro.asJSON || ro.asCSV {
		if ro.asJSON && ro.asCSV {
			return fmt.Errorf("-json and -csv are mutually exclusive")
		}
		// Sweeps execute through the same engine/scheduler code path as
		// the speard server (internal/sched.Exec), so a CLI sweep and a
		// POSTed one are the same computation end to end.
		spec := sched.JournalSpec{Dir: ro.journalDir, Resume: ro.resume, Perf: reg}
		if ro.verbose {
			spec.Log = os.Stderr
		}
		if ro.resume {
			spec.OnOpen = func(js sched.JournalStats) {
				fmt.Fprintf(os.Stderr, "spearbench: resuming: %d completed runs replayed from the journal", js.Replayed)
				if js.Torn {
					fmt.Fprint(os.Stderr, " (torn final record dropped; its run re-executes)")
				}
				if js.Quarantined > 0 {
					fmt.Fprintf(os.Stderr, " (%d corrupt records quarantined; their runs re-execute)", js.Quarantined)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
		mallocs0, bytes0 := sweepMemStats()
		sweepStart := time.Now()
		cfgs := harness.StandardConfigs()
		rep, _, err := sched.Exec(ctx, sched.EngineForSuite(suite), sched.Request{Seed: seed, Experiment: "sweep"}, spec)
		if err != nil {
			return err
		}
		st := benchStats{wall: time.Since(sweepStart)}
		mallocs1, bytes1 := sweepMemStats()
		st.allocs, st.heapBytes = mallocs1-mallocs0, bytes1-bytes0
		if ro.asJSON {
			err = rep.WriteJSON(out)
		} else {
			err = rep.WriteCSV(out)
		}
		if err != nil {
			return err
		}
		if ro.perfOut != "" && !rep.Interrupted {
			if err := writeBenchDoc(ro.perfOut, reg, rep, st); err != nil {
				return fmt.Errorf("perf-out: %w", err)
			}
			fmt.Fprintf(os.Stderr, "spearbench: wrote perf baseline %s\n", ro.perfOut)
		}
		if ro.autoProfile != "" && !rep.Interrupted {
			if err := autoProfile(ctx, suite, cfgs, ro.autoProfile); err != nil {
				return err
			}
		}
		if rep.Interrupted {
			return errPartial
		}
		return nil
	}

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		fmt.Fprintln(out, harness.RenderTable1(suite.Table1()))
		ran = true
	}
	if want("fig6") {
		rows, err := suite.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure6(rows))
		ran = true
	}
	if want("table3") {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderTable3(rows))
		ran = true
	}
	if want("fig7") {
		rows, err := suite.Figure7()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure7(rows))
		ran = true
	}
	if want("fig8") {
		rows, err := suite.Figure8()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure8(rows))
		ran = true
	}
	if experiment == "motivation" {
		rows, err := suite.Motivation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderMotivation(rows))
		ran = true
	}
	if experiment == "hybrid" {
		rows, err := suite.Hybrid()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderHybrid(rows))
		ran = true
	}
	if experiment == "ablate" {
		out2, err := harness.RunAblations(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, out2)
		ran = true
	}
	if want("fig9") {
		series, err := suite.Figure9()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure9(series))
		ran = true
	}
	if experiment == "faults" {
		fmt.Fprintln(out, harness.RenderFaultSuite(suite.FaultSuite(seed)))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
