// Command spearbench regenerates the paper's evaluation: Table 1, Figure 6,
// Table 3, Figure 7, Figure 8, and Figure 9.
//
// Usage:
//
//	spearbench [-experiment all|table1|fig6|table3|fig7|fig8|fig9|faults]
//	           [-kernels mcf,art,...] [-parallel N] [-seed N] [-v]
//	spearbench -json [-kernels mcf,art] > report.json
//	spearbench -csv  [-kernels mcf,art] > report.csv
//
// With -json or -csv the bench instead sweeps every kernel across the five
// machine models and emits one machine-readable report on stdout (schema
// spear-report/1); render it with spearstat. -cpuprofile and -memprofile
// write pprof profiles of the sweep itself.
//
// Running everything takes a few minutes; use -kernels to restrict the set.
// Sweeps run in partial-results mode: a failing (kernel, machine) pair
// renders as a per-row error instead of aborting the experiment, and
// kernels that fail to prepare are reported on stderr and skipped.
//
// The faults experiment injects every fault class (corrupt slice masks,
// bogus trigger PCs, truncated live-in sets, flipped opcode bits in the
// P-thread Table image) into every kernel and verifies the containment
// invariant: the main thread's final state must match the functional
// emulator's under any p-thread fault.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"spear/internal/harness"
	"spear/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig6, table3, fig7, fig8, fig9, faults, motivation, hybrid, ablate, or all")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all fifteen)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	seed := flag.Int64("seed", 1, "fault-injection seed (faults experiment)")
	verbose := flag.Bool("v", false, "log progress to stderr")
	asJSON := flag.Bool("json", false, "sweep all machines and write a spear-report/1 JSON report to stdout")
	asCSV := flag.Bool("csv", false, "sweep all machines and write a flat CSV report to stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if err := profiled(*cpuProfile, *memProfile, func() error {
		return run(*experiment, *kernels, *parallel, *seed, *verbose, *asJSON, *asCSV)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "spearbench:", err)
		os.Exit(1)
	}
}

// profiled runs f under the optional pprof CPU and heap profiles.
func profiled(cpuProfile, memProfile string, f func() error) error {
	if cpuProfile != "" {
		pf, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			pf, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spearbench:", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintln(os.Stderr, "spearbench:", err)
			}
		}()
	}
	return f()
}

func run(experiment, kernels string, parallel int, seed int64, verbose, asJSON, asCSV bool) error {
	opts := harness.DefaultOptions()
	opts.Parallel = parallel
	if verbose {
		opts.Log = os.Stderr
	}
	if kernels != "" {
		for _, name := range strings.Split(kernels, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workloads.ByName(name); !ok {
				return fmt.Errorf("unknown kernel %q (known: %s)", name, strings.Join(workloads.Names(), ", "))
			}
			opts.Kernels = append(opts.Kernels, name)
		}
	}
	suite, err := harness.NewSuite(opts)
	if err != nil {
		return err
	}
	for name, perr := range suite.Failed {
		fmt.Fprintf(os.Stderr, "spearbench: warning: kernel %s failed to prepare and is skipped: %v\n", name, perr)
	}
	out := io.Writer(os.Stdout)

	if asJSON || asCSV {
		if asJSON && asCSV {
			return fmt.Errorf("-json and -csv are mutually exclusive")
		}
		rep := suite.SweepReport("sweep", harness.StandardConfigs())
		if asJSON {
			return rep.WriteJSON(out)
		}
		return rep.WriteCSV(out)
	}

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		fmt.Fprintln(out, harness.RenderTable1(suite.Table1()))
		ran = true
	}
	if want("fig6") {
		rows, err := suite.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure6(rows))
		ran = true
	}
	if want("table3") {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderTable3(rows))
		ran = true
	}
	if want("fig7") {
		rows, err := suite.Figure7()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure7(rows))
		ran = true
	}
	if want("fig8") {
		rows, err := suite.Figure8()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure8(rows))
		ran = true
	}
	if experiment == "motivation" {
		rows, err := suite.Motivation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderMotivation(rows))
		ran = true
	}
	if experiment == "hybrid" {
		rows, err := suite.Hybrid()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderHybrid(rows))
		ran = true
	}
	if experiment == "ablate" {
		out2, err := harness.RunAblations(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, out2)
		ran = true
	}
	if want("fig9") {
		series, err := suite.Figure9()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure9(series))
		ran = true
	}
	if experiment == "faults" {
		fmt.Fprintln(out, harness.RenderFaultSuite(suite.FaultSuite(seed)))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
