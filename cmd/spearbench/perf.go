package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spear/internal/cpu"
	"spear/internal/harness"
	"spear/internal/perf"
)

// Performance observability surfaces (DESIGN.md §13):
//
//   - -perf-out BENCH_<name>.json captures the sweep as a spear-bench/1
//     baseline document: wall clock, per-stage simulator host time,
//     journal I/O, allocation totals, and committed-instructions/sec
//     throughput, each with the regression threshold spearstat -bench
//     gates on.
//   - -autoprofile dir/ re-executes the sweep's slowest run under the
//     CPU profiler and writes cpu.pprof + heap.pprof into dir.
//   - -debug-addr host:port serves /debug/pprof/ and /metrics (a JSON
//     registry snapshot) for live inspection of a long sweep.

// startDebugServer mounts the pprof handlers and the registry snapshot
// on addr and serves them for the life of the process. It returns the
// bound address (useful with ":0").
func startDebugServer(addr string, reg *perf.Registry) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	mux.Handle("/metrics", perf.Handler(reg))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// benchStats carries the sweep-level measurements that do not live in
// the registry.
type benchStats struct {
	wall      time.Duration
	allocs    uint64 // heap objects allocated during the sweep
	heapBytes uint64 // bytes allocated during the sweep
}

// sweepMemStats reads the allocation counters; call before and after
// the sweep and subtract.
func sweepMemStats() (mallocs, totalAlloc uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs, m.TotalAlloc
}

// writeBenchDoc assembles the spear-bench/1 document from the registry
// snapshot, the report, and the sweep-level stats, and writes it to
// path. Thresholds are generous by design — host timing on a shared
// machine is noisy, and the gate is meant to catch real regressions, not
// jitter.
func writeBenchDoc(path string, reg *perf.Registry, rep *harness.Report, st benchStats) error {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	name = strings.TrimPrefix(name, "BENCH_")
	env := perf.CaptureEnv(time.Now().UTC().Format(time.RFC3339),
		"regenerate: go run ./cmd/spearbench "+strings.Join(os.Args[1:], " "))
	b := perf.NewBench(name, env)

	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}

	// Sweep-level wall clock and allocation behaviour.
	b.Add("sweep.wall.ns", "ns", float64(st.wall.Nanoseconds()), perf.LowerIsBetter, 25)
	b.Add("sweep.allocs", "objects", float64(st.allocs), perf.LowerIsBetter, 30)
	b.Add("sweep.heap.bytes", "bytes", float64(st.heapBytes), perf.LowerIsBetter, 30)

	// Simulator totals and per-stage attribution.
	runNs := counters["cpu.run.ns"]
	loopNs := counters["cpu.run.loop.ns"]
	b.Add("cpu.run.ns", "ns", float64(runNs), perf.LowerIsBetter, 25)
	var stageSum uint64
	for name, v := range counters {
		if strings.HasPrefix(name, "cpu.stage.") {
			b.Add(name, "ns", float64(v), perf.LowerIsBetter, 35)
			stageSum += v
		}
	}
	if loopNs > 0 {
		// The acceptance metric: how much of the measured run wall clock
		// the stage buckets explain. Informational (threshold 0) but
		// printed by spearstat so a coverage collapse is visible.
		b.Add("cpu.stage.coverage", "fraction", float64(stageSum)/float64(runNs), perf.HigherIsBetter, 0)
	}

	// Committed-instruction throughput: per simulated run second (the
	// simulator's own speed) and per sweep wall second (end-to-end,
	// including preparation and the pool).
	var instrs uint64
	for _, row := range rep.Rows {
		if row.Result != nil {
			instrs += row.Result.MainCommitted
		}
	}
	if runNs > 0 {
		b.Add("sim.throughput.ips", "instrs/s", float64(instrs)/(float64(runNs)/1e9), perf.HigherIsBetter, 20)
	}
	if st.wall > 0 {
		b.Add("sweep.throughput.ips", "instrs/s", float64(instrs)/st.wall.Seconds(), perf.HigherIsBetter, 20)
	}
	b.Add("cpu.instrs", "instrs", float64(instrs), perf.LowerIsBetter, 0)
	b.Add("cpu.cycles", "cycles", float64(counters["cpu.cycles"]), perf.LowerIsBetter, 0)

	// Journal I/O (zero without -journal; informational either way).
	for _, n := range []string{"journal.commits", "journal.bytes", "journal.write.ns", "journal.fsync.ns"} {
		if v, ok := counters[n]; ok {
			b.Add(n, unitFor(n), float64(v), perf.LowerIsBetter, 0)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func unitFor(name string) string {
	switch {
	case strings.HasSuffix(name, ".ns"):
		return "ns"
	case strings.HasSuffix(name, ".bytes"):
		return "bytes"
	default:
		return "count"
	}
}

// autoProfile re-executes the sweep's slowest completed run under the
// CPU profiler and writes cpu.pprof and heap.pprof into dir. The rerun
// bypasses the suite's memo cache (it calls the simulator directly), so
// the profile contains one clean simulation rather than a cache hit.
func autoProfile(ctx context.Context, suite *harness.Suite, cfgs []cpu.Config, dir string) error {
	kernel, config, dur, ok := suite.SlowestRun()
	if !ok {
		return fmt.Errorf("autoprofile: no completed runs to profile")
	}
	var prep *harness.Prepared
	for _, p := range suite.Prepared {
		if p.Kernel.Name == kernel {
			prep = p
		}
	}
	var cfg *cpu.Config
	for i := range cfgs {
		if cfgs[i].Name == config {
			cfg = &cfgs[i]
		}
	}
	if prep == nil || cfg == nil {
		return fmt.Errorf("autoprofile: slowest run %s on %s not in this sweep", kernel, config)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spearbench: autoprofile: re-running slowest pair %s on %s (%v) under the CPU profiler\n", kernel, config, dur.Round(time.Millisecond))

	cpuPath := filepath.Join(dir, "cpu.pprof")
	cf, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		_ = cf.Close()
		return err
	}
	var runErr error
	pprof.Do(ctx, pprof.Labels("kernel", kernel, "config", config, "run", "autoprofile"), func(ctx context.Context) {
		_, runErr = cpu.RunContext(ctx, prep.Ref, *cfg)
	})
	pprof.StopCPUProfile()
	if cerr := cf.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return fmt.Errorf("autoprofile: %w", runErr)
	}

	heapPath := filepath.Join(dir, "heap.pprof")
	hf, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(hf); err != nil {
		_ = hf.Close()
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spearbench: autoprofile: wrote %s and %s\n", cpuPath, heapPath)
	return nil
}
