// Command speard serves SPEAR sweeps over HTTP: a crash-tolerant sweep
// service with admission control, per-request deadlines, and graceful
// drain. It drives the same engine/scheduler path as spearbench
// (internal/sched), so a sweep POSTed here produces a report
// byte-identical to the CLI's.
//
// Usage:
//
//	speard [-addr :8791] [-data speard-data] [-workers N] [-queue N]
//	       [-per-client N] [-deadline D] [-max-deadline D]
//	       [-drain-timeout D] [-parallel N] [-v]
//
// Submit a sweep and fetch its report:
//
//	curl -d '{"kernels":["mcf"],"seed":1}' localhost:8791/v1/sweeps
//	curl localhost:8791/v1/jobs/<id>/report
//
// Jobs are keyed by the request's SHA-256 content hash: identical
// requests from any number of clients coalesce onto one job, and each
// job's runs are write-ahead-journaled under -data/<key>.journal. After
// a crash (even SIGKILL), restarting speard over the same -data and
// resubmitting the identical request resumes from the fsync'd journal
// and converges to the byte-identical report.
//
// Admission control: the queue is bounded (-queue); past the bound a
// submission is answered 429 with a Retry-After header, never silently
// dropped. -per-client bounds one client's live jobs the same way.
// -deadline bounds jobs that request none and -max-deadline clamps what
// requests may ask for; an expired deadline preempts the cycle simulator
// at its next cancellation poll and journals the runs as interrupted (so
// a resubmission resumes, not repeats).
//
// Shutdown: the first SIGINT/SIGTERM starts the two-phase drain — stop
// admitting (readyz flips to 503, new submissions get 503+Retry-After),
// shed queued jobs with a typed reason, let running jobs finish within
// -drain-timeout, then preempt whatever remains (journaled, resumable).
// A second signal forces an immediate exit.
//
// Exit codes (see internal/exitcode):
//
//	0  clean drain — no work was preempted
//	3  partial — the drain timed out and in-flight jobs were preempted;
//	   their journals survive, resubmit after restart to resume
//	1  hard failure (bad flags, bind error, forced second-signal exit)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/perf"
	"spear/internal/sched"
	"spear/internal/speard"
	"spear/internal/store"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	data := flag.String("data", "speard-data", "data directory for per-job write-ahead journals")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 16, "admission queue bound; submissions past it get 429 + Retry-After")
	perClient := flag.Int("per-client", 0, "max live (queued+running) jobs per client (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-job deadline for requests that set none (0 = unbounded)")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp on requested per-job deadlines (0 = no clamp)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on SIGTERM before they are preempted")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "per-job simulation pool width (total concurrency = workers x parallel)")
	storeTTL := flag.Duration("store-ttl", 0, "expire stored completed reports after this age (0 = keep forever)")
	storeSweep := flag.Duration("store-sweep", 10*time.Minute, "interval between TTL expiry sweeps of the report store")
	verbose := flag.Bool("v", false, "log job transitions and storage-health events to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: speard [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
Exit codes:
  0  clean drain — no work was preempted
  3  partial — drain timed out; preempted jobs are journaled, resubmit to resume
  1  hard failure

The first SIGINT/SIGTERM drains gracefully; a second forces an immediate exit.
`)
	}
	flag.Parse()

	os.Exit(run(*addr, *data, sched.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		PerClient:       *perClient,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DataDir:         *data,
	}, *drainTimeout, *parallel, *storeTTL, *storeSweep, *verbose))
}

func run(addr, data string, cfg sched.Config, drainTimeout time.Duration, parallel int, storeTTL, storeSweep time.Duration, verbose bool) int {
	if err := os.MkdirAll(data, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "speard:", err)
		return exitcode.Err
	}

	// The perf registry covers the scheduler and the server, NOT the
	// engine: harness.Options.Perf would stamp host timing onto report
	// rows and break byte-identical convergence across restarts.
	reg := perf.NewRegistry()
	cfg.Perf = reg
	if verbose {
		cfg.Log = os.Stderr
	}

	// The completed-report index scans -data at startup: every sweep a
	// previous incarnation finished is served straight from disk, never
	// re-executed. Scan problems (quarantined damage) are logged and the
	// affected entry is simply not indexed — startup never fails on a
	// damaged journal.
	ix, err := store.Open(store.Config{Dir: data, TTL: storeTTL, Perf: reg, Log: cfg.Log})
	if err != nil {
		fmt.Fprintln(os.Stderr, "speard: report store:", err)
		return exitcode.Err
	}
	cfg.Store = ix
	if n := ix.Len(); n > 0 {
		fmt.Fprintf(os.Stderr, "speard: report store indexed %d completed sweep(s)\n", n)
	}

	opts := harness.DefaultOptions()
	opts.Parallel = parallel
	engine := sched.NewSuiteEngine(opts)
	scheduler := sched.New(engine, cfg)
	defer scheduler.Close()

	// TTL expiry is a background sweep, not a per-Get side effect alone:
	// entries age out even when nobody asks for them.
	if storeTTL > 0 && storeSweep > 0 {
		stopSweep := make(chan struct{})
		defer close(stopSweep)
		go func() {
			tick := time.NewTicker(storeSweep)
			defer tick.Stop()
			for {
				select {
				case <-stopSweep:
					return
				case <-tick.C:
					if n := ix.Expire(time.Now()); n > 0 && verbose {
						fmt.Fprintf(os.Stderr, "speard: report store expired %d entr(ies)\n", n)
					}
				}
			}
		}()
	}

	srv := speard.New(scheduler, reg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speard:", err)
		return exitcode.Err
	}
	fmt.Fprintf(os.Stderr, "speard: listening on %s (data=%s workers=%d queue=%d)\n",
		ln.Addr(), data, cfg.Workers, cfg.QueueDepth)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "speard:", err)
		return exitcode.Err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "speard: %s — draining (grace %s; signal again to force exit)\n", sig, drainTimeout)
	}

	// Second signal anywhere in the drain forces out immediately.
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "speard: forced exit")
		os.Exit(exitcode.Err)
	}()

	// Phase 1+2: stop admitting (readyz goes 503 via the scheduler's
	// draining flag), shed the queue, wait for running jobs up to the
	// grace period, then preempt.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := scheduler.Drain(drainCtx)

	// Stop serving only after the drain so probes and progress reads
	// work throughout.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = httpSrv.Shutdown(shutCtx)

	switch {
	case drainErr == nil:
		fmt.Fprintln(os.Stderr, "speard: drained clean")
		return exitcode.OK
	case errors.Is(drainErr, sched.ErrDrainTimeout):
		fmt.Fprintln(os.Stderr, "speard:", drainErr)
		return exitcode.Partial
	default:
		fmt.Fprintln(os.Stderr, "speard:", drainErr)
		return exitcode.Err
	}
}
