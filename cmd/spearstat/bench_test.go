package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spear/internal/perf"
)

func writeBench(t *testing.T, path string, metrics []perf.Metric) {
	t.Helper()
	b := perf.NewBench("test", perf.CaptureEnv("2026-01-01T00:00:00Z", ""))
	for _, m := range metrics {
		b.Add(m.Name, m.Unit, m.Value, m.Better, m.ThresholdPct)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunBenchComparesAndGates pins the -bench mode end to end: the
// comparison renders, and the returned regression count drives the CI
// exit code.
func TestRunBenchComparesAndGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_old.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	writeBench(t, oldPath, []perf.Metric{
		{Name: "sweep.wall.ns", Unit: "ns", Value: 100, Better: perf.LowerIsBetter, ThresholdPct: 25},
		{Name: "sim.throughput.ips", Unit: "instrs/s", Value: 1000, Better: perf.HigherIsBetter, ThresholdPct: 20},
	})
	writeBench(t, newPath, []perf.Metric{
		{Name: "sweep.wall.ns", Unit: "ns", Value: 200, Better: perf.LowerIsBetter, ThresholdPct: 25},
		{Name: "sim.throughput.ips", Unit: "instrs/s", Value: 1100, Better: perf.HigherIsBetter, ThresholdPct: 20},
	})

	var out bytes.Buffer
	regressed, err := runBench([]string{oldPath, newPath}, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Errorf("regressed = %d, want 1 (wall clock doubled)", regressed)
	}
	s := out.String()
	for _, want := range []string{"sweep.wall.ns", "REGRESS", "sim.throughput.ips", "FAIL: 1 metric(s) regressed"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison output missing %q:\n%s", want, s)
		}
	}

	// A generous override threshold clears the gate.
	out.Reset()
	regressed, err = runBench([]string{oldPath, newPath}, 500, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Errorf("regressed with 500%% override = %d, want 0", regressed)
	}

	// Wrong arity and unreadable files are hard errors, not exit 4.
	if _, err := runBench([]string{oldPath}, 0, &out); err == nil {
		t.Error("single-argument -bench did not error")
	}
	if _, err := runBench([]string{oldPath, filepath.Join(dir, "missing.json")}, 0, &out); err == nil {
		t.Error("missing new document did not error")
	}
}
