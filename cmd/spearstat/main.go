// Command spearstat renders a machine-readable sweep report (produced by
// spearbench -json) as human-readable tables: a per-pair summary, the
// paper's Figure 6 normalized-IPC table, interval-metric sparklines, and
// the prefetch-usefulness breakdown.
//
// Usage:
//
//	spearbench -json | spearstat
//	spearstat report.json
//	spearstat -top 5 report.json
//	spearstat -journal sweep.journal
//	spearstat -journal sweep.journal -follow
//	spearstat -journal sweep.journal -verify
//	spearstat -bench BENCH_baseline.json BENCH_new.json
//
// The Figure 6 table is reproduced digit for digit from the JSON alone
// (float64 values survive the round trip exactly), so `spearbench -json |
// spearstat` matches `spearbench -experiment fig6` without re-simulating.
//
// With -journal, spearstat instead inspects a sweep's write-ahead journal
// and prints a one-line progress summary — runs done/failed/skipped and
// the (kernel, machine) pairs currently in flight on the sweep's worker
// pool. -follow refreshes the line in place every second until
// interrupted, a live progress view of a parallel sweep running in
// another process; a journal that does not exist yet shows a waiting
// line until the sweep creates it.
//
// -verify walks the journal and reports per-record integrity (the same
// check as spearbench -fsck): record counts by format version, run
// states, torn tails, and corrupt records.
//
// With -bench, spearstat instead compares two spear-bench/1 documents
// (written by spearbench -perf-out) benchstat-style: per-metric old vs
// new values, percentage deltas, and a verdict column driven by the
// regression thresholds stored in the baseline. -bench-threshold N
// overrides every gating threshold with a flat N%; -bench-warn reports
// regressions without failing, for advisory CI lanes.
//
// Exit codes: 0 clean (or report rendered), 2 journal damaged (torn or
// corrupt records), 4 benchmark regression, 1 hard failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/journal"
	"spear/internal/mem"
	"spear/internal/perf"
	"spear/internal/stats"
)

func main() {
	top := flag.Int("top", 10, "prefetch PCs to list per (kernel, machine) pair")
	journalDir := flag.String("journal", "", "render sweep progress from this write-ahead journal directory instead of a report")
	addr := flag.String("addr", "", "render live progress from a running speard at this address (e.g. http://localhost:8791) instead of a journal directory")
	follow := flag.Bool("follow", false, "with -journal/-addr: refresh the progress line every -interval until interrupted")
	refresh := flag.Duration("interval", time.Second, "refresh interval for -follow")
	verify := flag.Bool("verify", false, "with -journal: walk the journal and report per-record integrity (exit 2 on damage)")
	bench := flag.Bool("bench", false, "compare two spear-bench/1 documents: spearstat -bench old.json new.json (exit 4 on regression)")
	benchThreshold := flag.Float64("bench-threshold", 0, "with -bench: override every gating regression threshold with this flat percentage")
	benchWarn := flag.Bool("bench-warn", false, "with -bench: report regressions but exit 0 (advisory mode)")
	flag.Parse()

	if *follow && *journalDir == "" && *addr == "" {
		fmt.Fprintln(os.Stderr, "spearstat: -follow requires -journal <dir> or -addr <url>")
		os.Exit(exitcode.Err)
	}
	if *verify && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "spearstat: -verify requires -journal <dir>")
		os.Exit(exitcode.Err)
	}
	if *journalDir != "" && *addr != "" {
		fmt.Fprintln(os.Stderr, "spearstat: -journal and -addr are mutually exclusive")
		os.Exit(exitcode.Err)
	}
	if *refresh <= 0 {
		fmt.Fprintln(os.Stderr, "spearstat: -interval must be positive")
		os.Exit(exitcode.Err)
	}
	if *bench {
		regressed, err := runBench(flag.Args(), *benchThreshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spearstat:", err)
			os.Exit(exitcode.Err)
		}
		if regressed > 0 && !*benchWarn {
			os.Exit(exitcode.BenchRegression)
		}
		return
	}
	if *verify {
		rep, err := journal.Fsck(nil, *journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spearstat:", err)
			os.Exit(exitcode.Err)
		}
		fmt.Print(rep.Summary())
		if !rep.Clean() {
			os.Exit(exitcode.VerifyDamaged)
		}
		return
	}
	if *journalDir != "" || *addr != "" {
		interval := time.Duration(0)
		if *follow {
			interval = *refresh
		}
		var err error
		if *addr != "" {
			err = progressAddr(*addr, interval, os.Stdout)
		} else {
			err = progress(*journalDir, interval, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "spearstat:", err)
			os.Exit(exitcode.Err)
		}
		return
	}
	if err := run(flag.Args(), *top, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spearstat:", err)
		os.Exit(exitcode.Err)
	}
}

// runBench loads two spear-bench/1 documents, renders their comparison,
// and returns how many metrics regressed past their threshold. The
// baseline's stored thresholds gate unless overridePct > 0 replaces
// them with a flat percentage.
func runBench(args []string, overridePct float64, out io.Writer) (int, error) {
	if len(args) != 2 {
		return 0, fmt.Errorf("-bench takes exactly two documents: spearstat -bench old.json new.json")
	}
	old, err := perf.ReadBenchFile(args[0])
	if err != nil {
		return 0, err
	}
	new_, err := perf.ReadBenchFile(args[1])
	if err != nil {
		return 0, err
	}
	deltas := perf.Compare(old, new_, overridePct)
	fmt.Fprint(out, perf.RenderComparison(old, new_, deltas))
	regressed := perf.Regressions(deltas)
	if regressed > 0 {
		fmt.Fprintf(out, "\nFAIL: %d metric(s) regressed past threshold\n", regressed)
	}
	return regressed, nil
}

func run(args []string, top int, out io.Writer) error {
	in := io.Reader(os.Stdin)
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one report file (default: stdin)")
	}
	rep, err := harness.ReadReport(in)
	if err != nil {
		return err
	}

	fmt.Fprintln(out, renderSummary(rep))
	if hasMachines(rep, "baseline", "SPEAR-128", "SPEAR-256") {
		rows, err := harness.Fig6FromReport(rep)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFigure6(rows))
	}
	if s := renderIntervals(rep); s != "" {
		fmt.Fprintln(out, s)
	}
	if s := renderPrefetch(rep, top); s != "" {
		fmt.Fprintln(out, s)
	}
	return nil
}

func hasMachines(rep *harness.Report, names ...string) bool {
	have := map[string]bool{}
	for _, m := range rep.Machines {
		have[m] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// renderSummary tabulates the headline statistics of every (kernel,
// machine) pair, with per-row error notes for failed pairs.
func renderSummary(rep *harness.Report) string {
	t := stats.NewTable("kernel", "machine", "cycles", "IPC", "L1D miss", "triggers", "extracted", "faults")
	prev := ""
	for _, row := range rep.Rows {
		if prev != "" && row.Kernel != prev {
			t.AddSeparator()
		}
		prev = row.Kernel
		if row.Result == nil {
			if row.Skipped != "" {
				t.AddSpanRow(row.Kernel, "SKIPPED: "+row.Skipped)
			} else {
				t.AddSpanRow(row.Kernel, "ERROR: "+row.Error)
			}
			continue
		}
		r := row.Result
		t.AddRow(row.Kernel, row.Config, fmt.Sprint(r.Cycles), r.IPC,
			r.L1D.MissRate(), fmt.Sprint(r.Triggers), fmt.Sprint(r.Extracted),
			fmt.Sprint(r.PFault.Total()))
	}
	title := "Sweep summary"
	if rep.Experiment != "" {
		title += " (" + rep.Experiment + ")"
	}
	if rep.Interrupted {
		title += " — PARTIAL: sweep interrupted; resume with spearbench -journal <dir> -resume"
	}
	return title + "\n" + t.String()
}

// renderIntervals draws one IPC sparkline per pair that carries an
// interval-metric series.
func renderIntervals(rep *harness.Report) string {
	t := stats.NewTable("kernel", "machine", "samples", "IPC p50", "IPC p95", "IPC over time")
	n := 0
	for _, row := range rep.Rows {
		if row.Result == nil || len(row.Result.Intervals) == 0 {
			continue
		}
		n++
		ipc := make([]float64, len(row.Result.Intervals))
		for i, sm := range row.Result.Intervals {
			ipc[i] = sm.IPC
		}
		t.AddRow(row.Kernel, row.Config, fmt.Sprint(len(ipc)),
			stats.Percentile(ipc, 50), stats.Percentile(ipc, 95), stats.Sparkline(ipc))
	}
	if n == 0 {
		return ""
	}
	return "Interval metrics\n" + t.String()
}

// renderPrefetch tabulates the prefetch-usefulness classification: totals
// per pair plus the hottest prefetching PCs.
func renderPrefetch(rep *harness.Report, top int) string {
	t := stats.NewTable("kernel", "machine", "pc", "fills", "timely", "late", "useless", "harmful", "timely %")
	n := 0
	for _, row := range rep.Rows {
		if row.Result == nil || row.Result.Prefetch.Fills == 0 {
			continue
		}
		if n > 0 {
			t.AddSeparator()
		}
		n++
		pf := row.Result.Prefetch
		addClass := func(label string, c mem.PrefetchClass) {
			pct := 0.0
			if c.Fills > 0 {
				pct = 100 * float64(c.Timely) / float64(c.Fills)
			}
			t.AddRow(row.Kernel, row.Config, label, fmt.Sprint(c.Fills),
				fmt.Sprint(c.Timely), fmt.Sprint(c.Late), fmt.Sprint(c.Useless),
				fmt.Sprint(c.Harmful), pct)
		}
		addClass("all", pf.PrefetchClass)
		pcs := append([]mem.PrefetchPC(nil), pf.PerPC...)
		sort.Slice(pcs, func(i, j int) bool { return pcs[i].Fills > pcs[j].Fills })
		if top >= 0 && len(pcs) > top {
			pcs = pcs[:top]
		}
		for _, pc := range pcs {
			addClass(fmt.Sprintf("pc %d", pc.PC), pc.PrefetchClass)
		}
	}
	if n == 0 {
		return ""
	}
	return "Prefetch usefulness\n" + t.String()
}
