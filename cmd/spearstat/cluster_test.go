package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAddrLineClusterBanner pins the -addr view against a spearproxy:
// the shards list renders as a cluster health banner ahead of the
// merged counts, and a plain speard response (no shards) stays
// banner-free.
func TestAddrLineClusterBanner(t *testing.T) {
	cluster := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/progress" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{
			"jobs_queued": 1, "jobs_running": 2, "jobs_done": 5,
			"jobs_failed": 0, "jobs_interrupted": 0, "jobs_shed": 0,
			"runs": {"done": 20, "failed": 0, "skipped": 0},
			"shards": [
				{"addr": "http://h1:8791", "state": "ready"},
				{"addr": "http://h2:8791", "state": "draining"},
				{"addr": "http://h3:8791", "state": "down", "breaker_open": true, "error": "connection refused"}
			]
		}`))
	}))
	defer cluster.Close()

	line, err := addrLine(cluster.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cluster: 1/3 shards ready",
		"http://h2:8791: draining",
		"http://h3:8791: down (breaker open) (connection refused)",
		"2 running",
		"20 done",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("cluster line missing %q:\n%s", want, line)
		}
	}

	single := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs_done": 1, "runs": {"done": 4, "failed": 0, "skipped": 0}}`))
	}))
	defer single.Close()
	line, err = addrLine(single.URL)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(line, "cluster:") {
		t.Errorf("single-speard line grew a cluster banner:\n%s", line)
	}
}
