package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spear/internal/journal"
)

func writeRecords(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	w, err := journal.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderProgressCountsAndInFlight(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, []journal.Record{
		{Status: journal.StatusStarted, Key: "k1", Kernel: "mcf", Config: "baseline"},
		{Status: journal.StatusDone, Key: "k1", Kernel: "mcf", Config: "baseline", Result: []byte(`{}`)},
		{Status: journal.StatusStarted, Key: "k2", Kernel: "art", Config: "SPEAR-128"},
		{Status: journal.StatusFailed, Key: "k2", Kernel: "art", Config: "SPEAR-128", Error: "boom"},
		{Status: journal.StatusStarted, Key: "k3", Kernel: "vpr", Config: "SPEAR-256"},
		{Status: journal.StatusSkipped, Key: "k3", Kernel: "vpr", Config: "SPEAR-256", Skip: "breaker"},
		{Status: journal.StatusStarted, Key: "k4", Kernel: "gzip", Config: "baseline"},
		{Status: journal.StatusStarted, Key: "k5", Kernel: "mst", Config: "SPEAR-128"},
	})

	var out bytes.Buffer
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	line := out.String()
	// Append stamps wall-clock timestamps, so the live line carries a
	// pace segment whose exact values depend on the test's own speed;
	// check the deterministic prefix and that pace is present.
	want := "sweep: 1 done, 1 failed, 1 skipped | 2 in flight: gzip/baseline, mst/SPEAR-128"
	if !strings.HasPrefix(line, want) {
		t.Errorf("progress line:\n got %q\nwant prefix %q", line, want)
	}
	if !strings.Contains(line, "| elapsed ") {
		t.Errorf("progress line missing pace segment: %q", line)
	}
}

// TestRenderPaceDeterministic drives the pace segment with injected
// timestamps: elapsed from the first started record, throughput from
// terminal records per elapsed minute, and an ETA scaled by the
// in-flight count.
func TestRenderPaceDeterministic(t *testing.T) {
	const sec = int64(time.Second)
	base := int64(1_700_000_000) * sec
	st := journal.Replay([]journal.Record{
		{Status: journal.StatusStarted, Key: "a", Kernel: "mcf", Config: "baseline", T: base},
		{Status: journal.StatusDone, Key: "a", Kernel: "mcf", Config: "baseline", Result: []byte(`{}`), T: base + 30*sec},
		{Status: journal.StatusStarted, Key: "b", Kernel: "art", Config: "baseline", T: base + 5*sec},
		{Status: journal.StatusDone, Key: "b", Kernel: "art", Config: "baseline", Result: []byte(`{}`), T: base + 60*sec},
		{Status: journal.StatusStarted, Key: "c", Kernel: "vpr", Config: "baseline", T: base + 60*sec},
	}, false)

	// Live view 120s in: 2 terminal runs over 2 minutes = 1.0 runs/min,
	// 1 in flight => ETA ~ 1/2 of elapsed = 60s.
	line := renderProgressAt(st, base+120*sec)
	for _, wantSeg := range []string{"elapsed 2m0s", "1.0 runs/min", "ETA ~1m0s"} {
		if !strings.Contains(line, wantSeg) {
			t.Errorf("live pace line missing %q: %q", wantSeg, line)
		}
	}

	// Replay durations: a took 30s, b took 55s.
	if len(st.DoneDurations) != 2 || st.DoneDurations[0] != 30*sec || st.DoneDurations[1] != 55*sec {
		t.Errorf("DoneDurations = %v, want [30s 55s] in ns", st.DoneDurations)
	}

	// Once nothing is in flight, elapsed freezes at the sweep's own span
	// (last event - first start) regardless of how late we look.
	stDone := journal.Replay([]journal.Record{
		{Status: journal.StatusStarted, Key: "a", Kernel: "mcf", Config: "baseline", T: base},
		{Status: journal.StatusDone, Key: "a", Kernel: "mcf", Config: "baseline", Result: []byte(`{}`), T: base + 90*sec},
	}, false)
	line = renderProgressAt(stDone, base+3600*sec)
	if !strings.Contains(line, "elapsed 1m30s") {
		t.Errorf("finished sweep should report its own span, got %q", line)
	}
	if strings.Contains(line, "ETA") {
		t.Errorf("finished sweep should not print an ETA: %q", line)
	}

	// Journals from older builds carry no timestamps: no pace segment.
	stOld := journal.Replay([]journal.Record{
		{Status: journal.StatusStarted, Key: "a", Kernel: "mcf", Config: "baseline"},
	}, false)
	if line := renderProgressAt(stOld, base); strings.Contains(line, "elapsed") {
		t.Errorf("timestamp-less journal grew a pace segment: %q", line)
	}
}

func TestRenderProgressTruncatesLongInFlightList(t *testing.T) {
	st := journal.Replay([]journal.Record{
		{Status: journal.StatusStarted, Key: "a", Kernel: "a", Config: "c"},
		{Status: journal.StatusStarted, Key: "b", Kernel: "b", Config: "c"},
		{Status: journal.StatusStarted, Key: "c", Kernel: "c", Config: "c"},
		{Status: journal.StatusStarted, Key: "d", Kernel: "d", Config: "c"},
		{Status: journal.StatusStarted, Key: "e", Kernel: "e", Config: "c"},
		{Status: journal.StatusStarted, Key: "f", Kernel: "f", Config: "c"},
	}, false)
	line := renderProgress(st)
	if !strings.Contains(line, "6 in flight") || !strings.Contains(line, "(+2 more)") {
		t.Errorf("long in-flight list not truncated: %q", line)
	}
}

// TestProgressMissingJournalShowsWaitingLine pins the -follow
// contract: watching a journal that does not exist yet is not an error,
// it reports that it is waiting for the sweep to create the file.
func TestProgressMissingJournalShowsWaitingLine(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "waiting for journal") {
		t.Errorf("missing journal line = %q, want a waiting notice", out.String())
	}
	// Once the journal exists, the same call renders real progress.
	writeRecords(t, dir, []journal.Record{
		{Status: journal.StatusStarted, Key: "k1", Kernel: "mcf", Config: "baseline"},
	})
	out.Reset()
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 in flight") {
		t.Errorf("created journal line = %q, want progress", out.String())
	}
}

// TestRenderProgressQuarantined pins the corrupt-record notice.
func TestRenderProgressQuarantined(t *testing.T) {
	st := journal.Replay(nil, false)
	st.Quarantined = 2
	if got := renderProgress(st); !strings.Contains(got, "2 corrupt records skipped") {
		t.Errorf("quarantined records not flagged: %q", got)
	}
}

func TestRenderProgressEmptyAndTorn(t *testing.T) {
	if got := renderProgress(journal.Replay(nil, false)); got != "sweep: 0 done, 0 failed, 0 skipped | 0 in flight" {
		t.Errorf("empty journal line = %q", got)
	}
	if got := renderProgress(journal.Replay(nil, true)); !strings.Contains(got, "torn tail") {
		t.Errorf("torn journal not flagged: %q", got)
	}
}
