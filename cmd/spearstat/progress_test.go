package main

import (
	"bytes"
	"strings"
	"testing"

	"spear/internal/journal"
)

func writeRecords(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	w, err := journal.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderProgressCountsAndInFlight(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, []journal.Record{
		{Status: journal.StatusStarted, Key: "k1", Kernel: "mcf", Config: "baseline"},
		{Status: journal.StatusDone, Key: "k1", Kernel: "mcf", Config: "baseline", Result: []byte(`{}`)},
		{Status: journal.StatusStarted, Key: "k2", Kernel: "art", Config: "SPEAR-128"},
		{Status: journal.StatusFailed, Key: "k2", Kernel: "art", Config: "SPEAR-128", Error: "boom"},
		{Status: journal.StatusStarted, Key: "k3", Kernel: "vpr", Config: "SPEAR-256"},
		{Status: journal.StatusSkipped, Key: "k3", Kernel: "vpr", Config: "SPEAR-256", Skip: "breaker"},
		{Status: journal.StatusStarted, Key: "k4", Kernel: "gzip", Config: "baseline"},
		{Status: journal.StatusStarted, Key: "k5", Kernel: "mst", Config: "SPEAR-128"},
	})

	var out bytes.Buffer
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	line := out.String()
	want := "sweep: 1 done, 1 failed, 1 skipped | 2 in flight: gzip/baseline, mst/SPEAR-128\n"
	if line != want {
		t.Errorf("progress line:\n got %q\nwant %q", line, want)
	}
}

func TestRenderProgressTruncatesLongInFlightList(t *testing.T) {
	st := journal.Replay([]journal.Record{
		{Status: journal.StatusStarted, Key: "a", Kernel: "a", Config: "c"},
		{Status: journal.StatusStarted, Key: "b", Kernel: "b", Config: "c"},
		{Status: journal.StatusStarted, Key: "c", Kernel: "c", Config: "c"},
		{Status: journal.StatusStarted, Key: "d", Kernel: "d", Config: "c"},
		{Status: journal.StatusStarted, Key: "e", Kernel: "e", Config: "c"},
		{Status: journal.StatusStarted, Key: "f", Kernel: "f", Config: "c"},
	}, false)
	line := renderProgress(st)
	if !strings.Contains(line, "6 in flight") || !strings.Contains(line, "(+2 more)") {
		t.Errorf("long in-flight list not truncated: %q", line)
	}
}

// TestProgressMissingJournalShowsWaitingLine pins the -follow
// contract: watching a journal that does not exist yet is not an error,
// it reports that it is waiting for the sweep to create the file.
func TestProgressMissingJournalShowsWaitingLine(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "waiting for journal") {
		t.Errorf("missing journal line = %q, want a waiting notice", out.String())
	}
	// Once the journal exists, the same call renders real progress.
	writeRecords(t, dir, []journal.Record{
		{Status: journal.StatusStarted, Key: "k1", Kernel: "mcf", Config: "baseline"},
	})
	out.Reset()
	if err := progress(dir, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 in flight") {
		t.Errorf("created journal line = %q, want progress", out.String())
	}
}

// TestRenderProgressQuarantined pins the corrupt-record notice.
func TestRenderProgressQuarantined(t *testing.T) {
	st := journal.Replay(nil, false)
	st.Quarantined = 2
	if got := renderProgress(st); !strings.Contains(got, "2 corrupt records skipped") {
		t.Errorf("quarantined records not flagged: %q", got)
	}
}

func TestRenderProgressEmptyAndTorn(t *testing.T) {
	if got := renderProgress(journal.Replay(nil, false)); got != "sweep: 0 done, 0 failed, 0 skipped | 0 in flight" {
		t.Errorf("empty journal line = %q", got)
	}
	if got := renderProgress(journal.Replay(nil, true)); !strings.Contains(got, "torn tail") {
		t.Errorf("torn journal not flagged: %q", got)
	}
}
