package main

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"spear/internal/journal"
)

// Journal progress mode: `spearstat -journal <dir>` inspects a sweep's
// write-ahead journal and prints one progress line — how many runs are
// done, failed, or skipped, and which are currently in flight. With
// -follow the line refreshes in place until interrupted, giving a live
// view of a parallel sweep running in another process: the in-flight
// count is the number of `started` records without a terminal record,
// i.e. the worker pool's current occupancy.

// progress renders the journal in dir once (follow == 0) or refreshes
// the line every follow interval until SIGINT. A journal that does not
// exist yet is not an error: -follow is commonly started before the
// sweep it watches, so it shows a waiting line and polls until the
// journal file appears.
func progress(dir string, follow time.Duration, out io.Writer) error {
	line, err := progressLine(dir)
	if err != nil {
		return err
	}
	if follow <= 0 {
		fmt.Fprintln(out, line)
		return nil
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	tick := time.NewTicker(follow)
	defer tick.Stop()
	for {
		fmt.Fprintf(out, "\r\033[K%s", line)
		select {
		case <-sigc:
			fmt.Fprintln(out)
			return nil
		case <-tick.C:
		}
		if line, err = progressLine(dir); err != nil {
			fmt.Fprintln(out)
			return err
		}
	}
}

// progressLine loads the journal and renders its progress line, or a
// waiting line while the journal file does not exist yet.
func progressLine(dir string) (string, error) {
	path := filepath.Join(dir, journal.FileName)
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		return "waiting for journal " + path + " to be created", nil
	}
	st, err := journal.Load(dir)
	if err != nil {
		return "", err
	}
	return renderProgress(st), nil
}

// renderProgress folds replayed journal state into one human-readable
// progress line.
func renderProgress(st *journal.State) string {
	return renderProgressAt(st, time.Now().UnixNano())
}

// renderProgressAt is renderProgress with an injectable clock (Unix
// nanoseconds) so tests are deterministic.
func renderProgressAt(st *journal.State, now int64) string {
	var done, failed, skipped int
	for _, rec := range st.Terminal {
		switch rec.Status {
		case journal.StatusDone:
			done++
		case journal.StatusFailed:
			failed++
		case journal.StatusSkipped:
			skipped++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d done, %d failed, %d skipped | %d in flight", done, failed, skipped, len(st.InFlight))
	if len(st.InFlight) > 0 {
		names := make([]string, 0, len(st.InFlight))
		for _, rec := range st.InFlight {
			name := rec.Kernel
			if rec.Config != "" {
				name += "/" + rec.Config
			}
			if name == "" {
				name = rec.Key
			}
			names = append(names, name)
		}
		sort.Strings(names)
		const show = 4
		extra := 0
		if len(names) > show {
			extra = len(names) - show
			names = names[:show]
		}
		fmt.Fprintf(&b, ": %s", strings.Join(names, ", "))
		if extra > 0 {
			fmt.Fprintf(&b, " (+%d more)", extra)
		}
	}
	b.WriteString(renderPace(st, done+failed+skipped, now))
	if st.Torn {
		b.WriteString(" | torn tail (crash mid-append; that run re-executes on resume)")
	}
	if st.Quarantined > 0 {
		fmt.Fprintf(&b, " | %d corrupt records skipped (their runs re-execute on resume)", st.Quarantined)
	}
	return b.String()
}

// renderPace derives elapsed time, completion throughput, and an ETA
// from the journal's record timestamps. Journals written by older
// builds carry no timestamps, in which case the whole segment is
// omitted. The ETA covers the runs the journal knows about — the ones
// in flight — at the sweep's observed completion rate; runs the sweep
// has not started yet are invisible to the journal, so the estimate is
// a floor while the pool is still being fed.
func renderPace(st *journal.State, terminal int, now int64) string {
	if st.FirstStart == 0 {
		return ""
	}
	// While runs are in flight the sweep is live and elapsed tracks the
	// caller's clock; once everything is terminal, report the sweep's own
	// span rather than time since it finished.
	end := now
	if len(st.InFlight) == 0 || end < st.LastEvent {
		end = st.LastEvent
	}
	elapsed := time.Duration(end - st.FirstStart)
	if elapsed <= 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " | elapsed %s", elapsed.Round(time.Second))
	if terminal > 0 {
		perMin := float64(terminal) / elapsed.Minutes()
		fmt.Fprintf(&b, " | %.1f runs/min", perMin)
		if n := len(st.InFlight); n > 0 {
			eta := time.Duration(float64(n) / float64(terminal) * float64(elapsed))
			fmt.Fprintf(&b, " | ETA ~%s", eta.Round(time.Second))
		}
	}
	return b.String()
}
