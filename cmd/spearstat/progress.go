package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"spear/internal/journal"
)

// Journal progress mode: `spearstat -journal <dir>` inspects a sweep's
// write-ahead journal and prints one progress line — how many runs are
// done, failed, or skipped, and which are currently in flight. With
// -follow the line refreshes in place (every -interval) until
// interrupted, giving a live view of a parallel sweep running in
// another process: the in-flight count is the number of `started`
// records without a terminal record, i.e. the worker pool's current
// occupancy.
//
// `spearstat -addr http://host:port` renders the same line from a
// running speard instead, via its /v1/progress endpoint. Both paths
// fold down to journal.Progress, so the numbers agree no matter where
// they were computed.

// followLoop renders line() once (follow == 0) or refreshes it in place
// every follow interval until SIGINT.
func followLoop(line func() (string, error), follow time.Duration, out io.Writer) error {
	s, err := line()
	if err != nil {
		return err
	}
	if follow <= 0 {
		fmt.Fprintln(out, s)
		return nil
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	tick := time.NewTicker(follow)
	defer tick.Stop()
	for {
		fmt.Fprintf(out, "\r\033[K%s", s)
		select {
		case <-sigc:
			fmt.Fprintln(out)
			return nil
		case <-tick.C:
		}
		if s, err = line(); err != nil {
			fmt.Fprintln(out)
			return err
		}
	}
}

// progress renders the journal in dir once (follow == 0) or refreshes
// the line every follow interval until SIGINT. A journal that does not
// exist yet is not an error: -follow is commonly started before the
// sweep it watches, so it shows a waiting line and polls until the
// journal file appears.
func progress(dir string, follow time.Duration, out io.Writer) error {
	return followLoop(func() (string, error) { return progressLine(dir) }, follow, out)
}

// progressAddr renders live progress from a running speard's
// /v1/progress endpoint, with the same once-or-follow behavior as the
// journal path.
func progressAddr(addr string, follow time.Duration, out io.Writer) error {
	return followLoop(func() (string, error) { return addrLine(addr) }, follow, out)
}

// progressLine loads the journal and renders its progress line, or a
// waiting line while the journal file does not exist yet.
func progressLine(dir string) (string, error) {
	path := filepath.Join(dir, journal.FileName)
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		return "waiting for journal " + path + " to be created", nil
	}
	st, err := journal.Load(dir)
	if err != nil {
		return "", err
	}
	return renderProgress(st), nil
}

// serverProgress is the subset of speard's /v1/progress response
// spearstat renders (the full shape is sched.Progress). Pointed at a
// spearproxy instead, the same endpoint carries the cluster-merged
// aggregate plus a per-shard health list (router.ClusterProgress); the
// shards field is simply absent on a single speard, so one decoder
// serves both.
type serverProgress struct {
	JobsQueued      int              `json:"jobs_queued"`
	JobsRunning     int              `json:"jobs_running"`
	JobsDone        int              `json:"jobs_done"`
	JobsFailed      int              `json:"jobs_failed"`
	JobsInterrupted int              `json:"jobs_interrupted"`
	JobsShed        int              `json:"jobs_shed"`
	Runs            journal.Progress `json:"runs"`
	Shards          []shardHealth    `json:"shards"`
}

// shardHealth mirrors router.ShardHealth on the wire.
type shardHealth struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	BreakerOpen bool   `json:"breaker_open"`
	Error       string `json:"error"`
}

// renderShardBanner folds the per-shard health list into the cluster
// banner segment: a ready count, then one annotation per shard that is
// not plainly ready ("addr: down (connection refused)").
func renderShardBanner(shards []shardHealth) string {
	ready := 0
	var trouble []string
	for _, s := range shards {
		if s.State == "ready" && !s.BreakerOpen {
			ready++
			continue
		}
		note := s.Addr + ": " + s.State
		if s.BreakerOpen {
			note += " (breaker open)"
		}
		if s.Error != "" {
			note += " (" + s.Error + ")"
		}
		trouble = append(trouble, note)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d/%d shards ready", ready, len(shards))
	if len(trouble) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(trouble, "; "))
	}
	return b.String()
}

// addrLine fetches and renders one progress line from a running speard.
func addrLine(addr string) (string, error) {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/v1/progress")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("%s/v1/progress: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
	}
	var sp serverProgress
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		return "", fmt.Errorf("%s/v1/progress: %w", base, err)
	}
	var b strings.Builder
	if len(sp.Shards) > 0 {
		b.WriteString(renderShardBanner(sp.Shards))
		b.WriteString(" | ")
	}
	fmt.Fprintf(&b, "speard: %d queued, %d running, %d done, %d failed, %d interrupted",
		sp.JobsQueued, sp.JobsRunning, sp.JobsDone, sp.JobsFailed, sp.JobsInterrupted)
	if sp.JobsShed > 0 {
		fmt.Fprintf(&b, ", %d shed", sp.JobsShed)
	}
	b.WriteString(" | ")
	b.WriteString(renderProgressLine(sp.Runs, time.Now().UnixNano()))
	return b.String(), nil
}

// renderProgress folds replayed journal state into one human-readable
// progress line.
func renderProgress(st *journal.State) string {
	return renderProgressAt(st, time.Now().UnixNano())
}

// renderProgressAt is renderProgress with an injectable clock (Unix
// nanoseconds) so tests are deterministic.
func renderProgressAt(st *journal.State, now int64) string {
	return renderProgressLine(st.Progress(), now)
}

// renderProgressLine renders the serializable progress summary — the
// shared currency between the local journal path and speard's HTTP
// endpoints — as the one-line human view.
func renderProgressLine(p journal.Progress, now int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d done, %d failed, %d skipped | %d in flight", p.Done, p.Failed, p.Skipped, len(p.InFlight))
	if len(p.InFlight) > 0 {
		names := p.InFlight
		const show = 4
		extra := 0
		if len(names) > show {
			extra = len(names) - show
			names = names[:show]
		}
		fmt.Fprintf(&b, ": %s", strings.Join(names, ", "))
		if extra > 0 {
			fmt.Fprintf(&b, " (+%d more)", extra)
		}
	}
	b.WriteString(renderPace(p, now))
	if p.Torn {
		b.WriteString(" | torn tail (crash mid-append; that run re-executes on resume)")
	}
	if p.Quarantined > 0 {
		fmt.Fprintf(&b, " | %d corrupt records skipped (their runs re-execute on resume)", p.Quarantined)
	}
	return b.String()
}

// renderPace derives elapsed time, completion throughput, and an ETA
// from the journal's record timestamps. Journals written by older
// builds carry no timestamps, in which case the whole segment is
// omitted. The ETA covers the runs the journal knows about — the ones
// in flight — at the sweep's observed completion rate; runs the sweep
// has not started yet are invisible to the journal, so the estimate is
// a floor while the pool is still being fed.
func renderPace(p journal.Progress, now int64) string {
	if p.FirstStart == 0 {
		return ""
	}
	// While runs are in flight the sweep is live and elapsed tracks the
	// caller's clock; once everything is terminal, report the sweep's own
	// span rather than time since it finished.
	end := now
	if len(p.InFlight) == 0 || end < p.LastEvent {
		end = p.LastEvent
	}
	elapsed := time.Duration(end - p.FirstStart)
	if elapsed <= 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " | elapsed %s", elapsed.Round(time.Second))
	if terminal := p.Terminal(); terminal > 0 {
		perMin := float64(terminal) / elapsed.Minutes()
		fmt.Fprintf(&b, " | %.1f runs/min", perMin)
		if n := len(p.InFlight); n > 0 {
			eta := time.Duration(float64(n) / float64(terminal) * float64(elapsed))
			fmt.Fprintf(&b, " | ETA ~%s", eta.Round(time.Second))
		}
	}
	return b.String()
}
