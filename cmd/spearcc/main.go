// Command spearcc is the SPEAR compiler driver: it assembles a SPISA source
// file (or builds a named workload), runs the four compiler modules of the
// paper's Figure 4 — CFG construction, profiling, hybrid slicing, and
// attach — and writes the resulting SPEAR binary.
//
// Usage:
//
//	spearcc -workload mcf -o mcf.spear [-report]
//	spearcc -in kernel.s -o kernel.spear [-report]
//
// With -workload, profiling runs on the kernel's training input and the
// emitted binary carries the reference input, matching the paper's
// train/ref methodology. With -in, the single provided program is both
// profiled and emitted.
package main

import (
	"flag"
	"fmt"
	"os"

	"spear/internal/asm"
	"spear/internal/exitcode"
	"spear/internal/prog"
	"spear/internal/spearcc"
	"spear/internal/workloads"
)

func main() {
	in := flag.String("in", "", "SPISA assembly source to compile")
	workload := flag.String("workload", "", "named workload to build and compile")
	out := flag.String("o", "", "output SPEAR binary path")
	report := flag.Bool("report", false, "print the compilation report (d-loads, slices, live-ins)")
	maxInstr := flag.Uint64("profile-instr", 4_000_000, "profiling instruction budget")
	threshold := flag.Uint64("miss-threshold", 2048, "delinquent-load miss threshold")
	flag.Parse()

	if err := run(*in, *workload, *out, *report, *maxInstr, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "spearcc:", err)
		os.Exit(exitcode.Err)
	}
}

func run(in, workload, out string, report bool, maxInstr, threshold uint64) error {
	if (in == "") == (workload == "") {
		return fmt.Errorf("exactly one of -in or -workload is required")
	}

	var train, ref *prog.Program
	switch {
	case workload != "":
		k, ok := workloads.ByName(workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", workload)
		}
		var err error
		if train, err = k.Build(workloads.Train); err != nil {
			return err
		}
		if ref, err = k.Build(workloads.Ref); err != nil {
			return err
		}
	default:
		src, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		if train, err = asm.Assemble(in, string(src)); err != nil {
			return err
		}
		ref = train
	}

	opts := spearcc.DefaultOptions()
	opts.Profile.MaxInstr = maxInstr
	opts.Profile.MissThreshold = threshold
	compiled, rep, err := spearcc.Compile(train, opts)
	if err != nil {
		return err
	}
	// Ship the reference input in the emitted binary.
	compiled.Data = ref.Data
	compiled.Name = ref.Name
	if err := compiled.Validate(); err != nil {
		return err
	}

	if report {
		fmt.Print(rep.Describe(compiled))
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prog.WriteTo(f, compiled); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d instructions, %d p-thread(s)\n", out, len(compiled.Text), len(compiled.PThreads))
	}
	return nil
}
