// Command spearsim runs a SPEAR binary (or a named workload) on the
// cycle-level simulator and prints the statistics block: cycles, IPC,
// branch behaviour, cache misses, and SPEAR activity.
//
// Usage:
//
//	spearsim -bin mcf.spear -machine SPEAR-256
//	spearsim -workload mcf -machine baseline
//	spearsim -workload art -machine SPEAR.sf-128 -mem-latency 200 -l2-latency 20
//	spearsim -workload mcf -machine SPEAR-128 -inject corrupt-mask -seed 7
//	spearsim -workload mcf -machine SPEAR-128 -metrics 10000 -events mcf.jsonl
//
// Telemetry: -events streams structured simulator events (fetch, dispatch,
// extract, trigger, issue, commit, flush, squash, fault, session) to a JSONL
// file (-events-binary selects the compact binary encoding instead);
// -event-cycles bounds the stream to the first N cycles. -metrics N samples
// interval statistics every N cycles and prints the series after the run.
// -cpuprofile/-memprofile write pprof profiles of the simulator itself.
// -perf times the simulator's own pipeline stages (host nanoseconds per
// stage) and prints the attribution table with a coverage percentage.
//
// Machines: baseline, SPEAR-128, SPEAR-256, SPEAR.sf-128, SPEAR.sf-256.
// With -workload, the program is first compiled with the SPEAR compiler on
// the training input (the baseline machine simply ignores the annotations).
//
// Exit codes: 0 success, 1 generic error, 2 validation failure or
// pipeline/oracle divergence, 3 deadlock (MaxCycles exhausted; a pipeline
// state dump is printed to stderr), 4 interrupted (SIGINT/SIGTERM; the
// simulation is preempted within a bounded cycle count — a second signal
// forces an immediate exit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"spear/internal/cpu"
	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/mem"
	"spear/internal/obs"
	"spear/internal/perf"
	"spear/internal/prog"
	"spear/internal/stats"
	"spear/internal/workloads"
)

// Exit codes come from the shared table in internal/exitcode so every
// binary in the repo agrees on what each status means.
const (
	exitErr         = exitcode.Err
	exitValidation  = exitcode.Validation
	exitDeadlock    = exitcode.Deadlock
	exitInterrupted = exitcode.Interrupted
)

// options collects the command-line knobs that shape one simulation.
type options struct {
	bin, workload, machine string
	memLat, l2Lat          int
	trace, maxCycles       uint64
	seed                   int64
	inject                 string
	events                 string
	eventsBinary           bool
	eventCycles            uint64
	metrics                uint64
	perf                   bool
}

func main() {
	var o options
	flag.StringVar(&o.bin, "bin", "", "SPEAR binary to simulate")
	flag.StringVar(&o.workload, "workload", "", "named workload to compile and simulate")
	flag.StringVar(&o.machine, "machine", "baseline", "baseline, SPEAR-128, SPEAR-256, SPEAR.sf-128, SPEAR.sf-256")
	flag.IntVar(&o.memLat, "mem-latency", 120, "memory access latency in cycles")
	flag.IntVar(&o.l2Lat, "l2-latency", 12, "L2 access latency in cycles")
	flag.Uint64Var(&o.trace, "trace", 0, "print a pipeline trace for the first N cycles")
	flag.Uint64Var(&o.maxCycles, "max-cycles", 0, "override the deadlock cycle limit (0 = machine default)")
	flag.Int64Var(&o.seed, "seed", 1, "fault-injection seed (with -inject)")
	flag.StringVar(&o.inject, "inject", "", "inject a p-thread fault class before simulating: corrupt-mask, bogus-trigger, truncate-live-ins, flip-opcode-bits")
	flag.StringVar(&o.events, "events", "", "write the structured event stream to this file (JSONL)")
	flag.BoolVar(&o.eventsBinary, "events-binary", false, "write -events in the compact binary encoding instead of JSONL")
	flag.Uint64Var(&o.eventCycles, "event-cycles", 0, "bound the event stream to the first N cycles (0 = whole run)")
	flag.Uint64Var(&o.metrics, "metrics", 0, "sample interval metrics every N cycles and print the series")
	flag.BoolVar(&o.perf, "perf", false, "time the simulator's own pipeline stages and print the attribution table")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "spearsim: interrupt — preempting the simulation (signal again to force exit)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "spearsim: forced exit")
		os.Exit(exitErr)
	}()

	if err := profiled(*cpuProfile, *memProfile, func() error { return run(ctx, o) }); err != nil {
		fmt.Fprintln(os.Stderr, "spearsim:", err)
		var dl *cpu.DeadlockError
		switch {
		case errors.Is(err, context.Canceled):
			os.Exit(exitInterrupted)
		case errors.As(err, &dl):
			fmt.Fprint(os.Stderr, "\npipeline state at abort:\n"+dl.Dump)
			os.Exit(exitDeadlock)
		case errors.Is(err, cpu.ErrValidation) || errors.Is(err, cpu.ErrDivergence):
			os.Exit(exitValidation)
		}
		os.Exit(exitErr)
	}
}

// profiled runs f under the optional pprof CPU and heap profiles.
func profiled(cpuProfile, memProfile string, f func() error) error {
	if cpuProfile != "" {
		pf, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			pf, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spearsim:", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintln(os.Stderr, "spearsim:", err)
			}
		}()
	}
	return f()
}

func machineConfig(name string) (cpu.Config, error) {
	switch name {
	case "baseline":
		return cpu.BaselineConfig(), nil
	case "SPEAR-128":
		return cpu.SPEARConfig(128, false), nil
	case "SPEAR-256":
		return cpu.SPEARConfig(256, false), nil
	case "SPEAR.sf-128":
		return cpu.SPEARConfig(128, true), nil
	case "SPEAR.sf-256":
		return cpu.SPEARConfig(256, true), nil
	}
	return cpu.Config{}, fmt.Errorf("unknown machine %q", name)
}

func run(ctx context.Context, o options) error {
	if (o.bin == "") == (o.workload == "") {
		return fmt.Errorf("exactly one of -bin or -workload is required")
	}
	cfg, err := machineConfig(o.machine)
	if err != nil {
		return err
	}
	cfg.Hierarchy = cfg.Hierarchy.WithLatencies(o.l2Lat, o.memLat)
	if o.trace > 0 {
		cfg.Trace = os.Stdout
		cfg.TraceCycles = o.trace
	}
	if o.maxCycles > 0 {
		cfg.MaxCycles = o.maxCycles
	}
	cfg.MetricsInterval = o.metrics
	if o.perf {
		cfg.Perf = perf.NewRegistry()
	}
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		var w obs.Writer
		if o.eventsBinary {
			w = obs.NewBinary(f)
		} else {
			w = obs.NewJSONL(f)
		}
		defer func() {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "spearsim:", err)
			}
			f.Close()
		}()
		cfg.Events = w
		cfg.EventCycles = o.eventCycles
	}

	var p *prog.Program
	switch {
	case o.bin != "":
		f, err := os.Open(o.bin)
		if err != nil {
			return err
		}
		p, err = prog.ReadFrom(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		k, ok := workloads.ByName(o.workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", o.workload)
		}
		prep, err := harness.Prepare(*k, harness.DefaultOptions())
		if err != nil {
			return err
		}
		p = prep.Ref
	}

	if o.inject != "" {
		return runInjected(p, cfg, harness.FaultClass(o.inject), o.seed)
	}

	res, err := cpu.RunContext(ctx, p, cfg)
	if err != nil {
		return err
	}
	printResult(p, res)
	printIntervals(res)
	printPerf(res)
	return nil
}

// runInjected perturbs the binary's p-thread annotations, simulates it, and
// checks the containment invariant against the functional emulator.
func runInjected(p *prog.Program, cfg cpu.Config, class harness.FaultClass, seed int64) error {
	if !cfg.SPEAR {
		return fmt.Errorf("-inject requires a SPEAR machine (got %s)", cfg.Name)
	}
	injection, err := harness.NewInjector(seed).Inject(p, class)
	if err != nil {
		return err
	}
	baseHash, baseCount, err := harness.BaselineState(p, 200_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("injected           %s (%s), seed %d\n", injection.Class, injection.Desc, seed)
	v := harness.VerifyContainment(injection, cfg, baseHash, baseCount)
	if v.Err != nil {
		return v.Err
	}
	printResult(injection.Prog, v.Res)
	fmt.Printf("containment        state match %v, commit-count match %v\n", v.StateMatch, v.CountMatch)
	if !v.Contained() {
		return fmt.Errorf("containment invariant violated under %s", injection.Class)
	}
	return nil
}

func printResult(p *prog.Program, r *cpu.Result) {
	fmt.Printf("program            %s (%d static instructions, %d p-threads)\n", p.Name, len(p.Text), len(p.PThreads))
	fmt.Printf("machine            %s\n", r.Config)
	fmt.Printf("cycles             %d\n", r.Cycles)
	fmt.Printf("instructions       %d (main thread)\n", r.MainCommitted)
	fmt.Printf("IPC                %.4f\n", r.IPC)
	fmt.Printf("cond branches      %d (hit ratio %.4f, IPB %.2f)\n", r.CondBranches, r.BranchRatio, r.IPB)
	fmt.Printf("avg IFQ occupancy  %.1f entries\n", r.AvgIFQOccupancy)
	fmt.Printf("L1D misses         main %d, p-thread %d (accesses %d / %d)\n",
		r.L1D.Misses[mem.TidMain], r.L1D.Misses[mem.TidHelper],
		r.L1D.Accesses[mem.TidMain], r.L1D.Accesses[mem.TidHelper])
	fmt.Printf("L2 misses          main %d, p-thread %d\n",
		r.L2.Misses[mem.TidMain], r.L2.Misses[mem.TidHelper])
	if r.Triggers > 0 || r.Extracted > 0 {
		fmt.Printf("triggers           %d (%d sessions completed, %d killed by flushes)\n",
			r.Triggers, r.SessionsDone, r.SessionsKilled)
		fmt.Printf("p-thread activity  %d extracted, %d committed, %d prefetch loads, %d live-in copies\n",
			r.Extracted, r.PCommitted, r.PrefetchLoads, r.LiveInCopies)
	}
	if f := r.PFault; f.Total() > 0 || f.Suppressed > 0 {
		fmt.Printf("p-thread faults    %d contained (oob %d, misaligned %d, div-zero %d, budget %d)\n",
			f.Total(), f.OOB, f.Misaligned, f.DivZero, f.Budget)
		fmt.Printf("fault backoff      %d disables, %d suppressed triggers\n", f.Disabled, f.Suppressed)
	}
	if pf := r.Prefetch; pf.Fills > 0 {
		fmt.Printf("prefetch fills     %d (timely %d, late %d, useless %d, harmful %d; %d PCs)\n",
			pf.Fills, pf.Timely, pf.Late, pf.Useless, pf.Harmful, len(pf.PerPC))
	}
	fmt.Printf("final state hash   %#016x\n", r.FinalStateHash)
}

// printPerf renders the -perf stage-timing attribution: host nanoseconds
// spent in each simulator pipeline stage, each stage's share of the run
// loop, and how much of the loop the buckets explain in total.
func printPerf(r *cpu.Result) {
	if r.Timing == nil {
		return
	}
	tm := r.Timing
	t := stats.NewTable("stage", "host time", "ns/cycle", "% of loop")
	for _, sg := range tm.Stages {
		pct := 0.0
		if tm.LoopNanos > 0 {
			pct = 100 * float64(sg.Nanos) / float64(tm.LoopNanos)
		}
		perCycle := 0.0
		if r.Cycles > 0 {
			perCycle = float64(sg.Nanos) / float64(r.Cycles)
		}
		t.AddRow(sg.Name, time.Duration(sg.Nanos).Round(time.Microsecond).String(), perCycle, pct)
	}
	coverage := 0.0
	if tm.LoopNanos > 0 {
		coverage = 100 * float64(tm.StageSum()) / float64(tm.LoopNanos)
	}
	fmt.Printf("\nsimulator self-timing (wall %v, loop %v)\n%s",
		time.Duration(tm.WallNanos).Round(time.Microsecond),
		time.Duration(tm.LoopNanos).Round(time.Microsecond), t.String())
	fmt.Printf("stage buckets cover %.1f%% of the run loop\n", coverage)
}

// printIntervals renders the -metrics time series as a table plus an IPC
// sparkline.
func printIntervals(r *cpu.Result) {
	if len(r.Intervals) == 0 {
		return
	}
	ipc := make([]float64, len(r.Intervals))
	t := stats.NewTable("cycle", "IPC", "IFQ", "RUU", "L1D miss", "L2 miss", "active", "p-share", "triggers", "faults")
	for i, sm := range r.Intervals {
		ipc[i] = sm.IPC
		t.AddRow(fmt.Sprint(sm.Cycle), sm.IPC, sm.IFQOccupancy, sm.RUUOccupancy,
			sm.L1DMissRate, sm.L2MissRate, sm.ActiveFrac, sm.PCommitShare,
			fmt.Sprint(sm.Triggers), fmt.Sprint(sm.PFaults))
	}
	fmt.Printf("\ninterval metrics (%d samples)\n%s", len(r.Intervals), t.String())
	fmt.Printf("IPC  %s  (p50 %.3f, p95 %.3f)\n",
		stats.Sparkline(ipc), stats.Percentile(ipc, 50), stats.Percentile(ipc, 95))
}
