// Command spearsim runs a SPEAR binary (or a named workload) on the
// cycle-level simulator and prints the statistics block: cycles, IPC,
// branch behaviour, cache misses, and SPEAR activity.
//
// Usage:
//
//	spearsim -bin mcf.spear -machine SPEAR-256
//	spearsim -workload mcf -machine baseline
//	spearsim -workload art -machine SPEAR.sf-128 -mem-latency 200 -l2-latency 20
//	spearsim -workload mcf -machine SPEAR-128 -inject corrupt-mask -seed 7
//
// Machines: baseline, SPEAR-128, SPEAR-256, SPEAR.sf-128, SPEAR.sf-256.
// With -workload, the program is first compiled with the SPEAR compiler on
// the training input (the baseline machine simply ignores the annotations).
//
// Exit codes: 0 success, 1 generic error, 2 validation failure or
// pipeline/oracle divergence, 3 deadlock (MaxCycles exhausted; a pipeline
// state dump is printed to stderr).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"spear/internal/cpu"
	"spear/internal/harness"
	"spear/internal/prog"
	"spear/internal/workloads"
)

const (
	exitErr        = 1
	exitValidation = 2
	exitDeadlock   = 3
)

func main() {
	bin := flag.String("bin", "", "SPEAR binary to simulate")
	workload := flag.String("workload", "", "named workload to compile and simulate")
	machine := flag.String("machine", "baseline", "baseline, SPEAR-128, SPEAR-256, SPEAR.sf-128, SPEAR.sf-256")
	memLat := flag.Int("mem-latency", 120, "memory access latency in cycles")
	l2Lat := flag.Int("l2-latency", 12, "L2 access latency in cycles")
	trace := flag.Uint64("trace", 0, "print a pipeline trace for the first N cycles")
	maxCycles := flag.Uint64("max-cycles", 0, "override the deadlock cycle limit (0 = machine default)")
	seed := flag.Int64("seed", 1, "fault-injection seed (with -inject)")
	inject := flag.String("inject", "", "inject a p-thread fault class before simulating: corrupt-mask, bogus-trigger, truncate-live-ins, flip-opcode-bits")
	flag.Parse()

	if err := run(*bin, *workload, *machine, *memLat, *l2Lat, *trace, *maxCycles, *seed, *inject); err != nil {
		fmt.Fprintln(os.Stderr, "spearsim:", err)
		var dl *cpu.DeadlockError
		switch {
		case errors.As(err, &dl):
			fmt.Fprint(os.Stderr, "\npipeline state at abort:\n"+dl.Dump)
			os.Exit(exitDeadlock)
		case errors.Is(err, cpu.ErrValidation) || errors.Is(err, cpu.ErrDivergence):
			os.Exit(exitValidation)
		}
		os.Exit(exitErr)
	}
}

func machineConfig(name string) (cpu.Config, error) {
	switch name {
	case "baseline":
		return cpu.BaselineConfig(), nil
	case "SPEAR-128":
		return cpu.SPEARConfig(128, false), nil
	case "SPEAR-256":
		return cpu.SPEARConfig(256, false), nil
	case "SPEAR.sf-128":
		return cpu.SPEARConfig(128, true), nil
	case "SPEAR.sf-256":
		return cpu.SPEARConfig(256, true), nil
	}
	return cpu.Config{}, fmt.Errorf("unknown machine %q", name)
}

func run(bin, workload, machine string, memLat, l2Lat int, trace, maxCycles uint64, seed int64, inject string) error {
	if (bin == "") == (workload == "") {
		return fmt.Errorf("exactly one of -bin or -workload is required")
	}
	cfg, err := machineConfig(machine)
	if err != nil {
		return err
	}
	cfg.Hierarchy = cfg.Hierarchy.WithLatencies(l2Lat, memLat)
	if trace > 0 {
		cfg.Trace = os.Stdout
		cfg.TraceCycles = trace
	}
	if maxCycles > 0 {
		cfg.MaxCycles = maxCycles
	}

	var p *prog.Program
	switch {
	case bin != "":
		f, err := os.Open(bin)
		if err != nil {
			return err
		}
		p, err = prog.ReadFrom(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		k, ok := workloads.ByName(workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", workload)
		}
		prep, err := harness.Prepare(*k, harness.DefaultOptions())
		if err != nil {
			return err
		}
		p = prep.Ref
	}

	if inject != "" {
		return runInjected(p, cfg, harness.FaultClass(inject), seed)
	}

	res, err := cpu.Run(p, cfg)
	if err != nil {
		return err
	}
	printResult(p, res)
	return nil
}

// runInjected perturbs the binary's p-thread annotations, simulates it, and
// checks the containment invariant against the functional emulator.
func runInjected(p *prog.Program, cfg cpu.Config, class harness.FaultClass, seed int64) error {
	if !cfg.SPEAR {
		return fmt.Errorf("-inject requires a SPEAR machine (got %s)", cfg.Name)
	}
	injection, err := harness.NewInjector(seed).Inject(p, class)
	if err != nil {
		return err
	}
	baseHash, baseCount, err := harness.BaselineState(p, 200_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("injected           %s (%s), seed %d\n", injection.Class, injection.Desc, seed)
	v := harness.VerifyContainment(injection, cfg, baseHash, baseCount)
	if v.Err != nil {
		return v.Err
	}
	printResult(injection.Prog, v.Res)
	fmt.Printf("containment        state match %v, commit-count match %v\n", v.StateMatch, v.CountMatch)
	if !v.Contained() {
		return fmt.Errorf("containment invariant violated under %s", injection.Class)
	}
	return nil
}

func printResult(p *prog.Program, r *cpu.Result) {
	fmt.Printf("program            %s (%d static instructions, %d p-threads)\n", p.Name, len(p.Text), len(p.PThreads))
	fmt.Printf("machine            %s\n", r.Config)
	fmt.Printf("cycles             %d\n", r.Cycles)
	fmt.Printf("instructions       %d (main thread)\n", r.MainCommitted)
	fmt.Printf("IPC                %.4f\n", r.IPC)
	fmt.Printf("cond branches      %d (hit ratio %.4f, IPB %.2f)\n", r.CondBranches, r.BranchRatio, r.IPB)
	fmt.Printf("avg IFQ occupancy  %.1f entries\n", r.AvgIFQOccupancy)
	fmt.Printf("L1D misses         main %d, p-thread %d (accesses %d / %d)\n",
		r.L1D.Misses[0], r.L1D.Misses[1], r.L1D.Accesses[0], r.L1D.Accesses[1])
	fmt.Printf("L2 misses          main %d, p-thread %d\n", r.L2.Misses[0], r.L2.Misses[1])
	if r.Triggers > 0 || r.Extracted > 0 {
		fmt.Printf("triggers           %d (%d sessions completed, %d killed by flushes)\n",
			r.Triggers, r.SessionsDone, r.SessionsKilled)
		fmt.Printf("p-thread activity  %d extracted, %d committed, %d prefetch loads, %d live-in copies\n",
			r.Extracted, r.PCommitted, r.PrefetchLoads, r.LiveInCopies)
	}
	if f := r.PFault; f.Total() > 0 || f.Suppressed > 0 {
		fmt.Printf("p-thread faults    %d contained (oob %d, misaligned %d, div-zero %d, budget %d)\n",
			f.Total(), f.OOB, f.Misaligned, f.DivZero, f.Budget)
		fmt.Printf("fault backoff      %d disables, %d suppressed triggers\n", f.Disabled, f.Suppressed)
	}
	fmt.Printf("final state hash   %#016x\n", r.FinalStateHash)
}
