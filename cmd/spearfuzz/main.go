// Command spearfuzz is the differential fuzzer: it generates seeded
// random SPISA programs (internal/progen), optionally runs them through
// the SPEAR compiler, and checks every machine model's cycle simulation
// against the functional emulator — FinalStateHash and MainCommitted must
// match on all of them.
//
// Usage:
//
//	spearfuzz -seeds 100                 # 100 random programs, all configs
//	spearfuzz -seeds 200 -start 1000    # a different seed window
//	spearfuzz -spec chase -seeds 50     # preset character (see -spec list)
//	spearfuzz -spec 'b6_k8_l2_...'      # explicit canonical spec
//	spearfuzz -seeds 50 -compile=false  # fuzz raw programs, no p-threads
//	spearfuzz -budget 2m                # stop launching new seeds after 2m
//
// A diverging seed writes a reproducer bundle under -out:
//
//	seed<N>.spisa     standalone assembly (re-assembles bit-exactly)
//	seed<N>.bin       SPEARBIN binary (preserves p-thread annotations)
//	seed<N>.json      seed, spec, kernel name, failure signature
//	seed<N>.min.spisa shrunk assembly reproducer
//	seed<N>.min.bin   shrunk binary
//
// Re-run a reproducer with spearsim -bin seed<N>.min.bin, or regenerate
// the original program from the seed+spec in seed<N>.json via
// spearbench -kernels 'gen:<seed>:<spec>'.
//
// Exit codes: 0 all seeds clean, 2 divergence found (reproducers
// written), 1 hard failure (bad flags, generator/compiler error, I/O).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/prog"
	"spear/internal/progen"
	"spear/internal/workloads"
)

func main() { os.Exit(run()) }

var (
	flagSeeds    = flag.Int("seeds", 50, "number of seeds to fuzz")
	flagStart    = flag.Int64("start", 1, "first seed")
	flagSpec     = flag.String("spec", "", "fixed spec: a preset name ("+strings.Join(progen.PresetNames(), ", ")+") or a canonical spec string; empty = a new random spec per seed")
	flagOut      = flag.String("out", "spearfuzz.repro", "directory for failing reproducers")
	flagParallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "seeds fuzzed concurrently")
	flagCompile  = flag.Bool("compile", true, "run the SPEAR compiler on each program (fuzzes p-thread machinery); false fuzzes raw binaries")
	flagShrink   = flag.Bool("shrink", true, "minimize failing programs before saving")
	flagBudget   = flag.Duration("budget", 0, "stop launching new seeds after this wall-clock time (0 = no limit)")
	flagV        = flag.Bool("v", false, "per-seed progress lines")
)

type finding struct {
	Seed      int64              `json:"seed"`
	Spec      string             `json:"spec"`
	Kernel    string             `json:"kernel"`
	RefInstr  uint64             `json:"ref_instr"`
	Div       *progen.Divergence `json:"divergence"`
	ShrunkLen int                `json:"shrunk_len,omitempty"`
	Err       string             `json:"error,omitempty"`
}

func run() int {
	flag.Parse()
	if *flagSeeds <= 0 {
		fmt.Fprintln(os.Stderr, "spearfuzz: -seeds must be positive")
		return exitcode.Err
	}

	var fixedSpec *progen.Spec
	if *flagSpec != "" {
		if s, ok := progen.Presets()[*flagSpec]; ok {
			fixedSpec = &s
		} else {
			s, err := progen.ParseSpec(*flagSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spearfuzz: bad -spec: %v\n", err)
				return exitcode.Err
			}
			fixedSpec = &s
		}
	}

	workers := *flagParallel
	if workers < 1 {
		workers = 1
	}
	var deadline time.Time
	if *flagBudget > 0 {
		deadline = time.Now().Add(*flagBudget)
	}

	opts := harness.DefaultOptions()
	// Generated programs are far smaller than the hand kernels; a lower
	// miss threshold lets the profiler still find delinquent loads.
	opts.Compiler.Profile.MissThreshold = 512

	seeds := make(chan int64)
	var (
		mu       sync.Mutex
		findings []finding
		hard     []finding
		ran      int
		skipped  int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				f := fuzzOne(seed, fixedSpec, opts)
				mu.Lock()
				ran++
				switch {
				case f == nil:
				case f.Err != "":
					hard = append(hard, *f)
				default:
					findings = append(findings, *f)
				}
				mu.Unlock()
				if *flagV {
					status := "ok"
					if f != nil {
						status = "FAIL"
					}
					fmt.Printf("seed %d: %s\n", seed, status)
				}
			}
		}()
	}
	for i := 0; i < *flagSeeds; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			skipped = *flagSeeds - i
			break
		}
		seeds <- *flagStart + int64(i)
	}
	close(seeds)
	wg.Wait()

	sort.Slice(findings, func(i, j int) bool { return findings[i].Seed < findings[j].Seed })
	sort.Slice(hard, func(i, j int) bool { return hard[i].Seed < hard[j].Seed })

	for _, f := range hard {
		fmt.Fprintf(os.Stderr, "spearfuzz: seed %d: %s\n", f.Seed, f.Err)
	}
	for _, f := range findings {
		fmt.Printf("DIVERGENCE seed %d config %s kind %s: %s\n", f.Seed, f.Div.Config, f.Div.Kind, f.Div.Detail)
		if f.ShrunkLen > 0 {
			fmt.Printf("  shrunk to %d instructions; reproducers under %s\n", f.ShrunkLen, *flagOut)
		}
	}
	note := ""
	if skipped > 0 {
		note = fmt.Sprintf(" (%d seeds skipped: -budget exhausted)", skipped)
	}
	fmt.Printf("spearfuzz: %d seeds, %d divergences, %d errors%s\n", ran, len(findings), len(hard), note)

	switch {
	case len(hard) > 0:
		return exitcode.Err
	case len(findings) > 0:
		return exitcode.Validation
	}
	return exitcode.OK
}

// fuzzOne runs one seed end to end: generate → (compile) → differential
// check → reproducer + shrink on failure. Returns nil when clean.
func fuzzOne(seed int64, fixedSpec *progen.Spec, opts harness.Options) *finding {
	spec := progen.RandomSpec(seed)
	if fixedSpec != nil {
		spec = *fixedSpec
	}
	k := workloads.Generated(seed, spec)
	f := &finding{Seed: seed, Spec: spec.String(), Kernel: k.Name}

	var target *prog.Program
	if *flagCompile {
		prep, err := harness.Prepare(k, opts)
		if err != nil {
			f.Err = fmt.Sprintf("prepare: %v", err)
			return f
		}
		target = prep.Ref
	} else {
		p, err := k.Build(workloads.Ref)
		if err != nil {
			f.Err = fmt.Sprintf("build: %v", err)
			return f
		}
		target = p
	}

	copts := progen.CheckOptions{MaxInstr: uint64(spec.Budget) + 1000}
	res := progen.Check(target, copts)
	f.RefInstr = res.RefCount
	if res.Div == nil {
		return nil
	}
	f.Div = res.Div

	if err := writeReproducers(f, target, res, copts); err != nil {
		f.Err = fmt.Sprintf("writing reproducer: %v", err)
	}
	return f
}

func writeReproducers(f *finding, target *prog.Program, res progen.CheckResult, copts progen.CheckOptions) error {
	dir := *flagOut
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, fmt.Sprintf("seed%d", f.Seed))
	if err := os.WriteFile(base+".spisa", []byte(progen.DumpSource(target)), 0o644); err != nil {
		return err
	}
	if err := writeBin(base+".bin", target); err != nil {
		return err
	}
	if *flagShrink {
		shrunk := progen.ShrinkDivergence(target, res, copts, 0)
		f.ShrunkLen = len(shrunk.Text)
		if err := os.WriteFile(base+".min.spisa", []byte(progen.DumpSource(shrunk)), 0o644); err != nil {
			return err
		}
		if err := writeBin(base+".min.bin", shrunk); err != nil {
			return err
		}
	}
	js, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(base+".json", append(js, '\n'), 0o644)
}

// writeBin saves a SPEARBIN image — the only reproducer form that keeps
// p-thread annotations (DumpSource emits plain assembly).
func writeBin(path string, p *prog.Program) error {
	b, err := prog.Marshal(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
