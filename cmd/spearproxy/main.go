// Command spearproxy fronts a speard cluster: a consistent-hash router
// that shards sweep submissions over N speard backends and keeps the
// cluster serving through shard crashes.
//
// Usage:
//
//	spearproxy -backends http://h1:8791,http://h2:8791,http://h3:8791
//	           [-addr :8790] [-health-interval 1s] [-timeout 15s]
//	           [-retries 2] [-backoff 50ms] [-backoff-max 2s]
//	           [-breaker-threshold 3] [-breaker-cooldown 5s] [-v]
//
// Requests are routed by the same SHA-256 content hash speard dedups
// on, so one request always lands on the same shard; after a shard
// crash the ring successor recomputes the sweep, and per-shard dedup +
// write-ahead journals + the completed-report store make that converge
// to the byte-identical report. Reads by job ID try the owner first and
// fall through ring successors, so results stay reachable wherever a
// failover placed them. /v1/progress merges every shard's view and
// carries a per-shard health banner; spearstat -addr pointed at the
// proxy renders the whole cluster.
//
// No backend available is never silent: the submission is answered 503
// with an aggregated Retry-After and a per-backend reason list.
//
// Exit codes (see internal/exitcode):
//
//	0  clean shutdown on SIGINT/SIGTERM
//	6  no usable backends configured
//	1  hard failure (bad flags, bind error)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spear/internal/exitcode"
	"spear/internal/perf"
	"spear/internal/router"
)

func main() {
	addr := flag.String("addr", ":8790", "listen address")
	backends := flag.String("backends", "", "comma-separated speard base URLs (required)")
	healthInterval := flag.Duration("health-interval", time.Second, "interval between /readyz health probes")
	timeout := flag.Duration("timeout", 15*time.Second, "per-attempt proxy timeout (SSE streams exempt)")
	retries := flag.Int("retries", 2, "connection retries per backend before failing over")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (exponential, jittered)")
	backoffMax := flag.Duration("backoff-max", 2*time.Second, "retry backoff cap")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive transport failures that open a backend's circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit skips its backend before probing")
	verbose := flag.Bool("v", false, "log failovers, breaker transitions, and health changes to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: spearproxy -backends url,url,... [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
Exit codes:
  0  clean shutdown
  6  no usable backends configured
  1  hard failure
`)
	}
	flag.Parse()
	os.Exit(run(*addr, *backends, router.Config{
		HealthInterval:   *healthInterval,
		AttemptTimeout:   *timeout,
		Retries:          *retries,
		BackoffBase:      *backoff,
		BackoffMax:       *backoffMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}, *verbose))
}

func run(addr, backends string, cfg router.Config, verbose bool) int {
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			cfg.Backends = append(cfg.Backends, b)
		}
	}
	cfg.Perf = perf.NewRegistry()
	if verbose {
		cfg.Log = os.Stderr
	}
	rt, err := router.New(cfg)
	if errors.Is(err, router.ErrNoBackends) {
		fmt.Fprintln(os.Stderr, "spearproxy: no usable backends (use -backends url,url,...)")
		return exitcode.NoBackends
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spearproxy:", err)
		return exitcode.Err
	}
	defer rt.Close()

	httpSrv := &http.Server{Handler: rt}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spearproxy:", err)
		return exitcode.Err
	}
	fmt.Fprintf(os.Stderr, "spearproxy: listening on %s, routing %d backend(s)\n", ln.Addr(), len(cfg.Backends))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "spearproxy:", err)
		return exitcode.Err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "spearproxy: %s — shutting down\n", sig)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	return exitcode.OK
}
