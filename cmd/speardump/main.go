// Command speardump disassembles a SPEAR binary: the text segment with
// labels, the data layout, and the attached p-thread table with member
// instructions highlighted — the closest thing to objdump for SPISA.
//
// Usage:
//
//	speardump -bin mcf.spear
//	speardump -workload mcf          # assemble + compile, then dump
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spear/internal/exitcode"
	"spear/internal/harness"
	"spear/internal/prog"
	"spear/internal/workloads"
)

func main() {
	bin := flag.String("bin", "", "SPEAR binary to dump")
	workload := flag.String("workload", "", "named workload to compile and dump")
	flag.Parse()
	if err := run(*bin, *workload); err != nil {
		fmt.Fprintln(os.Stderr, "speardump:", err)
		os.Exit(exitcode.Err)
	}
}

func run(bin, workload string) error {
	var p *prog.Program
	switch {
	case bin != "" && workload == "":
		f, err := os.Open(bin)
		if err != nil {
			return err
		}
		defer f.Close()
		if p, err = prog.ReadFrom(f); err != nil {
			return err
		}
	case workload != "" && bin == "":
		k, ok := workloads.ByName(workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", workload)
		}
		prep, err := harness.Prepare(*k, harness.DefaultOptions())
		if err != nil {
			return err
		}
		p = prep.Ref
	default:
		return fmt.Errorf("exactly one of -bin or -workload is required")
	}

	fmt.Printf("%s: %d instructions, entry %d, %d data chunk(s), %d p-thread(s)\n\n",
		p.Name, len(p.Text), p.Entry, len(p.Data), len(p.PThreads))

	// Label and membership indices.
	labels := map[int][]string{}
	for name, pc := range p.Labels {
		labels[pc] = append(labels[pc], name)
	}
	for pc := range labels {
		sort.Strings(labels[pc])
	}
	member := map[int]bool{}
	dload := map[int]bool{}
	for _, pt := range p.PThreads {
		dload[pt.DLoad] = true
		for _, m := range pt.Members {
			member[m] = true
		}
	}

	fmt.Println(".text")
	for pc, in := range p.Text {
		for _, l := range labels[pc] {
			fmt.Printf("%s:\n", l)
		}
		tag := "   "
		switch {
		case dload[pc]:
			tag = " D " // delinquent load
		case member[pc]:
			tag = " p " // p-thread member
		}
		fmt.Printf("  %4d %s %v\n", pc, tag, in)
	}

	if len(p.Symbols) > 0 {
		fmt.Println("\n.data")
		syms := make([]string, 0, len(p.Symbols))
		for s := range p.Symbols {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return p.Symbols[syms[i]] < p.Symbols[syms[j]] })
		for _, s := range syms {
			fmt.Printf("  %#010x  %s\n", p.Symbols[s], s)
		}
	}

	for i, pt := range p.PThreads {
		fmt.Printf("\np-thread %d: d-load @%d, region [%d,%d], %d members, d-cycle %.1f\n",
			i, pt.DLoad, pt.RegionStart, pt.RegionEnd, pt.Size(), pt.DCycle)
		fmt.Printf("  live-ins: %v\n", pt.LiveIns)
	}
	return nil
}
