// Package spear's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (run them with `go test -bench . -benchtime 1x`)
// and measure the hot paths of the simulator stack.
//
// One benchmark exists per artifact:
//
//	BenchmarkTable1Inventory        Table 1  (benchmark inventory)
//	BenchmarkFig6Speedup            Figure 6 (normalized IPC, 3 machines x 15 kernels)
//	BenchmarkTable3LongIFQ          Table 3  (SPEAR-256/128 vs branch behaviour)
//	BenchmarkFig7SeparateFU         Figure 7 (.sf machines added)
//	BenchmarkFig8MissReduction      Figure 8 (main-thread L1D miss reduction)
//	BenchmarkFig9LatencyTolerance   Figure 9 (memory-latency sweep, 6 kernels)
//
// Each iteration performs the complete experiment (compile + simulate); the
// rendered output of the final iteration is printed once so that a bench
// run doubles as a reproduction log.
package spear

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"spear/internal/asm"
	"spear/internal/bpred"
	"spear/internal/cpu"
	"spear/internal/emu"
	"spear/internal/harness"
	"spear/internal/journal"
	"spear/internal/mem"
	"spear/internal/workloads"
)

// benchSuite prepares the full 15-kernel suite once for all experiment
// benchmarks; preparation (assemble + profile + compile) is itself timed by
// BenchmarkCompileSuite.
var (
	suiteOnce sync.Once
	suiteVal  *harness.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *harness.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = harness.NewSuite(harness.DefaultOptions())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

func BenchmarkTable1Inventory(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable1(s.Table1())
	}
	b.StopTimer()
	fmt.Println(out)
}

func BenchmarkFig6Speedup(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure6(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

func BenchmarkTable3LongIFQ(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderTable3(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

func BenchmarkFig7SeparateFU(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure7(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

func BenchmarkFig8MissReduction(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure8(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

func BenchmarkFig9LatencyTolerance(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		series, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure9(series)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkMotivation runs the stride-prefetcher-vs-pre-execution
// comparison that backs the paper's introductory claim.
func BenchmarkMotivation(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Motivation()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderMotivation(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkHybridClaim compares software-spawned against hardware-triggered
// pre-execution (the paper's central hybrid argument).
func BenchmarkHybridClaim(b *testing.B) {
	s := sharedSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Hybrid()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderHybrid(rows)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblations runs the design-choice ablation studies (prefetch
// range, extraction bandwidth, trigger occupancy, p-thread priority) on
// the default three-kernel set.
func BenchmarkAblations(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = harness.RunAblations(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(out)
}

// sweepSuite prepares the three-kernel suite BenchmarkSweepParallel
// sweeps (annotated, unannotated, and pointer-chasing kernels — enough
// to keep the worker pool honest without the full fifteen).
var (
	sweepSuiteOnce sync.Once
	sweepSuiteVal  *harness.Suite
	sweepSuiteErr  error
)

// BenchmarkSweepParallel measures the journaled sweep engine's wall
// clock at worker-pool widths 1/2/4/8 (run with `-bench SweepParallel
// -benchtime 1x`). Every iteration drops the suite's run memo so each
// sweep re-simulates the full (kernel, config) grid; the report row
// order — and therefore the serialized report — is identical at every
// width, so this measures scheduling, not semantics.
func BenchmarkSweepParallel(b *testing.B) {
	sweepSuiteOnce.Do(func() {
		opts := harness.DefaultOptions()
		opts.Kernels = []string{"mcf", "field", "pointer"}
		sweepSuiteVal, sweepSuiteErr = harness.NewSuite(opts)
	})
	if sweepSuiteErr != nil {
		b.Fatal(sweepSuiteErr)
	}
	s := sweepSuiteVal
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s.Opts.Parallel = workers
			for i := 0; i < b.N; i++ {
				s.ResetRunCache()
				rep := s.SweepReport("bench", harness.StandardConfigs())
				for _, row := range rep.Rows {
					if row.Error != "" || row.Skipped != "" {
						b.Fatalf("%s on %s: error %q, skipped %q", row.Kernel, row.Config, row.Error, row.Skipped)
					}
				}
			}
		})
	}
}

// ------------------------------------------------------------ per-stage
//
// The per-stage suite breaks the sweep's wall clock into its three cost
// centres — the simulator's fetch→RUU→commit hot loop, the write-ahead
// journal's group-committed appends, and report serialization — so a
// regression flagged by `spearstat -bench` can be localized with
// `go test -bench 'Stage' -benchtime 10x`. Every benchmark reports
// allocations: the hot loop and the journal append path are supposed to
// stay allocation-light, and ReportAllocs makes a drift visible in the
// same run that measures time.

// BenchmarkStageHotLoop measures the cycle loop alone (fetch, dispatch,
// extract, issue, commit) on the mcf kernel under the SPEAR-128 machine,
// reported as ns per simulated cycle. This is the denominator of the
// cpu.stage.* attribution in BENCH documents.
func BenchmarkStageHotLoop(b *testing.B) {
	s := sharedSuite(b)
	var prep *harness.Prepared
	for _, p := range s.Prepared {
		if p.Kernel.Name == "mcf" {
			prep = p
		}
	}
	if prep == nil {
		b.Skip("mcf not prepared")
	}
	cfg := cpu.SPEARConfig(128, false)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := cpu.Run(prep.Ref, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

// BenchmarkStageJournalAppend measures the write-ahead journal's append
// path — marshal, CRC frame, group commit, fsync — per record pair
// (started + done), the per-run journal overhead of a sweep.
func BenchmarkStageJournalAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := journal.Open(dir, true)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	result := []byte(`{"cycles": 123456, "ipc": 1.23}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench-%d", i)
		if err := w.Append(journal.Record{Status: journal.StatusStarted, Key: key, Kernel: "mcf", Config: "SPEAR-128"}); err != nil {
			b.Fatal(err)
		}
		if err := w.Append(journal.Record{Status: journal.StatusDone, Key: key, Kernel: "mcf", Config: "SPEAR-128", Result: result}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageReportSerialize measures turning a finished sweep into
// its canonical JSON document — the byte-deterministic artifact every
// downstream tool consumes.
func BenchmarkStageReportSerialize(b *testing.B) {
	sweepSuiteOnce.Do(func() {
		opts := harness.DefaultOptions()
		opts.Kernels = []string{"mcf", "field", "pointer"}
		sweepSuiteVal, sweepSuiteErr = harness.NewSuite(opts)
	})
	if sweepSuiteErr != nil {
		b.Fatal(sweepSuiteErr)
	}
	rep := sweepSuiteVal.SweepReport("bench-serialize", harness.StandardConfigs())
	for _, row := range rep.Rows {
		if row.Error != "" || row.Skipped != "" {
			b.Fatalf("%s on %s: error %q, skipped %q", row.Kernel, row.Config, row.Error, row.Skipped)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileSuite times the SPEAR compiler pipeline (CFG + two
// profiling passes + slicing + attach) on one representative kernel.
func BenchmarkCompileSuite(b *testing.B) {
	k, _ := workloads.ByName("mcf")
	for i := 0; i < b.N; i++ {
		if _, err := harness.Prepare(*k, harness.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- micro

// BenchmarkCycleSimulator measures simulated instructions per second of the
// cycle core on the mcf kernel (reported as ns/instruction).
func BenchmarkCycleSimulator(b *testing.B) {
	s := sharedSuite(b)
	var prep *harness.Prepared
	for _, p := range s.Prepared {
		if p.Kernel.Name == "mcf" {
			prep = p
		}
	}
	if prep == nil {
		b.Skip("mcf not prepared")
	}
	cfg := cpu.SPEARConfig(128, false)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := cpu.Run(prep.Ref, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.MainCommitted
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instr), "ns/instr")
}

// BenchmarkEmulator measures the functional emulator's throughput.
func BenchmarkEmulator(b *testing.B) {
	p, err := asm.Assemble("bench.s", `
main:   li r1, 0
        li r2, 1000000
loop:   addi r1, r1, 1
        xor r3, r3, r1
        slli r4, r1, 2
        add r5, r5, r4
        blt r1, r2, loop
        halt
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(p)
		if err := m.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		instr += m.Count
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instr), "ns/instr")
}

// BenchmarkCacheHierarchy measures the two-level cache model.
func BenchmarkCacheHierarchy(b *testing.B) {
	h := mem.NewTimedHierarchy(mem.DefaultHierarchy())
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(8 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessAt(addrs[i%len(addrs)], i%8 == 0, i%2, uint64(i))
	}
}

// BenchmarkBranchPredictor measures the bimodal predictor.
func BenchmarkBranchPredictor(b *testing.B) {
	p := bpred.New(bpred.DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := i & 1023
		taken := i&7 != 0
		p.Update(pc, taken, p.PredictBranch(pc))
	}
}

// BenchmarkAssembler measures assembling a representative kernel.
func BenchmarkAssembler(b *testing.B) {
	k, _ := workloads.ByName("gzip")
	for i := 0; i < b.N; i++ {
		if _, err := k.Build(workloads.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryImage measures sparse-memory writes during workload build.
func BenchmarkMemoryImage(b *testing.B) {
	m := mem.NewMemory()
	buf := make([]byte, 8)
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(buf, uint64(i))
		m.WriteBytes(uint32(i*64)&0xFF_FFFF, buf)
	}
}
